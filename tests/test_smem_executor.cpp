// Interleaved seeding executor: the K-in-flight state machines must be
// bit-identical to the scalar collect_smems / seeds_from_smems path for
// every K, backend, thread count and query shape — ambiguous bases, very
// short and empty reads, empty batches.  The executor only changes *when*
// Occ lines are touched, never *which* extensions happen.
#include <gtest/gtest.h>

#include "align/driver.h"
#include "index/mem2_index.h"
#include "io/sam.h"
#include "seq/genome_sim.h"
#include "seq/read_sim.h"
#include "smem/smem_executor.h"
#include "util/rng.h"

namespace mem2::smem {
namespace {

struct ExecutorFixture {
  index::Mem2Index index;
  std::vector<std::vector<seq::Code>> queries;

  ExecutorFixture() {
    seq::GenomeConfig g;
    g.seed = 20190527;
    g.contig_lengths = {30000, 10000};
    g.repeat_fraction = 0.4;
    index = index::Mem2Index::build(seq::simulate_genome(g));

    // A deliberately rough mix: simulated reads with errors, reads with
    // injected ambiguous bases, very short reads, and empty reads.
    seq::ReadSimConfig rc;
    rc.seed = 11;
    rc.read_length = 101;
    rc.num_reads = 120;
    rc.substitution_rate = 0.02;
    util::Xoshiro256ss rng(99);
    for (const auto& read : seq::simulate_reads(index.ref(), rc)) {
      std::vector<seq::Code> q(read.bases.size());
      for (std::size_t j = 0; j < q.size(); ++j)
        q[j] = seq::char_to_code(read.bases[j]);
      if (rng.below(3) == 0)  // pepper ~1/3 of reads with Ns
        for (int n = 0; n < 3; ++n) q[rng.below(q.size())] = seq::kAmbig;
      queries.push_back(std::move(q));
      if (queries.size() % 10 == 0) {
        // Short fragments of the previous read, including degenerate sizes
        // (copy: emplace_back may reallocate queries).
        const std::vector<seq::Code> prev = queries.back();
        for (const std::size_t len : {std::size_t{0}, std::size_t{1},
                                      std::size_t{2}, std::size_t{7}})
          queries.emplace_back(prev.begin(),
                               prev.begin() + static_cast<std::ptrdiff_t>(len));
      }
    }
    // An all-N read: every position is skipped by every round.
    queries.emplace_back(25, seq::kAmbig);
  }

  template <class Fm>
  std::vector<std::vector<Smem>> scalar(const Fm& fm, const SeedingOptions& opt,
                                        bool prefetch) const {
    SmemWorkspace ws;
    std::vector<std::vector<Smem>> out(queries.size());
    for (std::size_t i = 0; i < queries.size(); ++i)
      collect_smems(fm, queries[i], opt, out[i], ws,
                    util::PrefetchPolicy{prefetch});
    return out;
  }

  template <class Fm>
  std::vector<std::vector<Smem>> interleaved(const Fm& fm,
                                             const SeedingOptions& opt,
                                             bool prefetch, int k) const {
    std::vector<std::vector<Smem>> out(queries.size());
    std::vector<QueryRef> refs(queries.size());
    for (std::size_t i = 0; i < queries.size(); ++i)
      refs[i] = QueryRef{queries[i], &out[i]};
    SmemExecutor ex(k);
    ex.collect(fm, refs, opt, util::PrefetchPolicy{prefetch});
    return out;
  }
};

const ExecutorFixture& fixture() {
  static const ExecutorFixture fx;
  return fx;
}

class InflightTest : public ::testing::TestWithParam<int> {};

TEST_P(InflightTest, IdenticalToScalarCp32) {
  const auto& fx = fixture();
  SeedingOptions opt;
  const auto expect = fx.scalar(fx.index.fm32(), opt, true);
  const auto got = fx.interleaved(fx.index.fm32(), opt, true, GetParam());
  ASSERT_EQ(expect.size(), got.size());
  for (std::size_t i = 0; i < expect.size(); ++i)
    ASSERT_EQ(expect[i], got[i]) << "read " << i << " K=" << GetParam();
}

TEST_P(InflightTest, IdenticalToScalarCp128) {
  const auto& fx = fixture();
  SeedingOptions opt;
  const auto expect = fx.scalar(fx.index.fm128(), opt, true);
  const auto got = fx.interleaved(fx.index.fm128(), opt, true, GetParam());
  for (std::size_t i = 0; i < expect.size(); ++i)
    ASSERT_EQ(expect[i], got[i]) << "read " << i << " K=" << GetParam();
}

TEST_P(InflightTest, PrefetchOnOffIdentical) {
  const auto& fx = fixture();
  SeedingOptions opt;
  const auto with = fx.interleaved(fx.index.fm32(), opt, true, GetParam());
  const auto without = fx.interleaved(fx.index.fm32(), opt, false, GetParam());
  for (std::size_t i = 0; i < with.size(); ++i) ASSERT_EQ(with[i], without[i]);
}

TEST_P(InflightTest, ThirdRoundDisabledIdentical) {
  const auto& fx = fixture();
  SeedingOptions opt;
  opt.max_mem_intv = 0;  // skip the LAST-like round entirely
  const auto expect = fx.scalar(fx.index.fm32(), opt, true);
  const auto got = fx.interleaved(fx.index.fm32(), opt, true, GetParam());
  for (std::size_t i = 0; i < expect.size(); ++i) ASSERT_EQ(expect[i], got[i]);
}

INSTANTIATE_TEST_SUITE_P(Inflight, InflightTest, ::testing::Values(1, 3, 8));

TEST(SmemExecutor, EmptyBatchIsANoOp) {
  const auto& fx = fixture();
  SmemExecutor ex(8);
  ex.collect(fx.index.fm32(), std::span<const QueryRef>{}, SeedingOptions{},
             util::PrefetchPolicy{true});  // must not crash or allocate lanes
}

TEST(SmemExecutor, BatchOfOnlyDegenerateReads) {
  const auto& fx = fixture();
  const std::vector<seq::Code> empty;
  const std::vector<seq::Code> one_n(1, seq::kAmbig);
  const std::vector<seq::Code> one_base(1, seq::Code{2});
  std::vector<std::vector<Smem>> out(3);
  const QueryRef refs[3] = {{empty, &out[0]}, {one_n, &out[1]}, {one_base, &out[2]}};
  SmemExecutor ex(8);
  ex.collect(fx.index.fm32(), refs, SeedingOptions{}, util::PrefetchPolicy{true});

  SmemWorkspace ws;
  std::vector<Smem> expect;
  collect_smems(fx.index.fm32(), one_base, SeedingOptions{}, expect, ws,
                util::PrefetchPolicy{true});
  EXPECT_TRUE(out[0].empty());
  EXPECT_TRUE(out[1].empty());
  EXPECT_EQ(out[2], expect);
}

TEST(SmemExecutor, ExecutorReuseAcrossBatches) {
  // Lane workspaces persist; a second batch on the same executor must be as
  // correct as the first (stale curr/prev/mem1 state must not leak).
  const auto& fx = fixture();
  SeedingOptions opt;
  const auto expect = fx.scalar(fx.index.fm32(), opt, true);
  SmemExecutor ex(5);
  for (int round = 0; round < 2; ++round) {
    std::vector<std::vector<Smem>> out(fx.queries.size());
    std::vector<QueryRef> refs(fx.queries.size());
    for (std::size_t i = 0; i < fx.queries.size(); ++i)
      refs[i] = QueryRef{fx.queries[i], &out[i]};
    ex.collect(fx.index.fm32(), refs, opt, util::PrefetchPolicy{true});
    for (std::size_t i = 0; i < expect.size(); ++i)
      ASSERT_EQ(expect[i], out[i]) << "round " << round << " read " << i;
  }
}

TEST(SalBatched, IdenticalToCallbackGather) {
  const auto& fx = fixture();
  SeedingOptions sopt;
  chain::ChainOptions copt;
  copt.max_occ = 13;  // odd cap exercises the stepped sampling
  SmemWorkspace ws;
  std::vector<Smem> smems;
  std::vector<chain::Seed> expect, got;
  for (const auto& q : fx.queries) {
    collect_smems(fx.index.fm32(), q, sopt, smems, ws, util::PrefetchPolicy{true});
    chain::seeds_from_smems(
        smems, copt, [&](idx_t row) { return fx.index.sa_lookup_flat(row); },
        expect);
    chain::seeds_from_smems_batched(smems, copt, fx.index.flat_sa(), got);
    ASSERT_EQ(expect, got);
  }
}

TEST(SalBatched, CompatibilityShimStillWorks) {
  const auto& fx = fixture();
  SmemWorkspace ws;
  std::vector<Smem> smems;
  collect_smems(fx.index.fm32(), fx.queries.front(), SeedingOptions{}, smems,
                ws, util::PrefetchPolicy{true});
  const chain::SalFn sal = [&](idx_t row) { return fx.index.sa_lookup_flat(row); };
  const auto via_shim = chain::seeds_from_smems(smems, chain::ChainOptions{}, sal);
  std::vector<chain::Seed> direct;
  chain::seeds_from_smems(smems, chain::ChainOptions{},
                          [&](idx_t row) { return fx.index.sa_lookup_flat(row); },
                          direct);
  EXPECT_EQ(via_shim, direct);
}

TEST(SmemExecutor, PipelineSamInvariantAcrossInflight) {
  // End-to-end: the batch driver's SAM output must not depend on K.
  const auto& fx = fixture();
  seq::ReadSimConfig rc;
  rc.seed = 21;
  rc.read_length = 101;
  rc.num_reads = 80;
  rc.substitution_rate = 0.015;
  const auto reads = seq::simulate_reads(fx.index.ref(), rc);

  auto run = [&](int k) {
    align::DriverOptions opt;
    opt.mode = align::Mode::kBatch;
    opt.batch_size = 32;
    opt.smem_inflight = k;
    std::string sam;
    for (const auto& rec : align::align_reads(fx.index, reads, opt))
      sam += rec.to_line() + "\n";
    return sam;
  };
  const std::string base = run(1);
  EXPECT_EQ(base, run(3));
  EXPECT_EQ(base, run(8));
}

}  // namespace
}  // namespace mem2::smem
