// Suffix-array construction: SA-IS vs naive comparison sort, plus
// structural invariants (permutation, sorted suffixes) as property tests.
#include <gtest/gtest.h>

#include <numeric>

#include "index/sais.h"
#include "seq/dna.h"
#include "seq/genome_sim.h"
#include "util/rng.h"

namespace mem2::index {
namespace {

std::vector<seq::Code> codes_of(const char* s) { return seq::encode(s); }

TEST(Sais, EmptyText) {
  const auto sa = build_suffix_array({});
  ASSERT_EQ(sa.size(), 1u);
  EXPECT_EQ(sa[0], 0);
}

TEST(Sais, SingleBase) {
  const auto sa = build_suffix_array(codes_of("A"));
  ASSERT_EQ(sa.size(), 2u);
  EXPECT_EQ(sa[0], 1);  // sentinel suffix
  EXPECT_EQ(sa[1], 0);
}

TEST(Sais, PaperExample) {
  // Figure 1 of the paper: R = ATACGAC, suffix array of R$ is
  // S = [7, 5, 2, 0, 6, 3, 4, 1] (0-based; row 0 is $).
  const auto sa = build_suffix_array(codes_of("ATACGAC"));
  const std::vector<idx_t> expect = {7, 5, 2, 0, 6, 3, 4, 1};
  EXPECT_EQ(sa, expect);
}

TEST(Sais, MatchesNaiveOnHandCases) {
  for (const char* s :
       {"A", "AC", "CA", "AAAA", "ACGT", "TTTTTTTT", "ACGTACGTACGT",
        "GATTACA", "CCCTAACCCTAACCCTAA", "ATATATATATATATA"}) {
    const auto text = codes_of(s);
    EXPECT_EQ(build_suffix_array(text), build_suffix_array_naive(text)) << s;
  }
}

/// Pins the forced-wide test hook and always restores the default.
struct NarrowLimitGuard {
  explicit NarrowLimitGuard(std::size_t limit) {
    set_sais_narrow_limit_for_test(limit);
  }
  ~NarrowLimitGuard() { set_sais_narrow_limit_for_test(0); }
};

class SaisRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(SaisRandomTest, MatchesNaiveOnRandomText) {
  util::Xoshiro256ss rng(static_cast<std::uint64_t>(GetParam()));
  const std::size_t n = 1 + rng.below(400);
  std::vector<seq::Code> text(n);
  for (auto& c : text) c = static_cast<seq::Code>(rng.below(4));
  const auto naive = build_suffix_array_naive(text);
  EXPECT_EQ(build_suffix_array(text), naive);
  EXPECT_EQ(build_suffix_array(text, 4), naive);
}

TEST_P(SaisRandomTest, MatchesNaiveOnRepetitiveText) {
  // Repetitive inputs exercise the SA-IS recursion (non-unique LMS names).
  util::Xoshiro256ss rng(static_cast<std::uint64_t>(GetParam()) * 7919);
  const std::size_t unit_len = 1 + rng.below(6);
  std::vector<seq::Code> unit(unit_len);
  for (auto& c : unit) c = static_cast<seq::Code>(rng.below(4));
  std::vector<seq::Code> text;
  const std::size_t copies = 2 + rng.below(60);
  for (std::size_t r = 0; r < copies; ++r)
    text.insert(text.end(), unit.begin(), unit.end());
  EXPECT_EQ(build_suffix_array(text), build_suffix_array_naive(text));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SaisRandomTest, ::testing::Range(0, 25));

TEST(Sais, LargeTextInvariants) {
  const auto ref = seq::random_genome(200000, 11);
  std::vector<seq::Code> text(static_cast<std::size_t>(ref.length()));
  ref.pac().extract(0, text.size(), text.data());

  const auto sa = build_suffix_array(text);
  ASSERT_EQ(sa.size(), text.size() + 1);
  EXPECT_EQ(sa[0], static_cast<idx_t>(text.size()));

  // Permutation of [0, n].
  std::vector<bool> seen(sa.size(), false);
  for (idx_t v : sa) {
    ASSERT_GE(v, 0);
    ASSERT_LT(static_cast<std::size_t>(v), sa.size());
    ASSERT_FALSE(seen[static_cast<std::size_t>(v)]);
    seen[static_cast<std::size_t>(v)] = true;
  }

  // Adjacent suffixes are in order (compare a bounded prefix; equality over
  // the bound would imply a tie that the sentinel breaks by length).
  auto leq = [&](idx_t a, idx_t b) {
    const idx_t n = static_cast<idx_t>(text.size());
    while (a < n && b < n) {
      if (text[static_cast<std::size_t>(a)] != text[static_cast<std::size_t>(b)])
        return text[static_cast<std::size_t>(a)] < text[static_cast<std::size_t>(b)];
      ++a;
      ++b;
    }
    return a == n;
  };
  for (std::size_t r = 1; r < sa.size(); ++r)
    ASSERT_TRUE(leq(sa[r - 1], sa[r])) << "rows " << r - 1 << "," << r;
}

TEST(Sais, ThreadCountDoesNotChangeTheResult) {
  // 200 kbp crosses the parallel-pass cutoff, so classification, LMS
  // collection/placement, and naming really run blocked+parallel; the
  // contract is a byte-identical SA for every thread count.
  const auto ref = seq::random_genome(200000, 23);
  std::vector<seq::Code> text(static_cast<std::size_t>(ref.length()));
  ref.pac().extract(0, text.size(), text.data());

  const auto sa1 = build_suffix_array(text, 1);
  EXPECT_EQ(build_suffix_array(text, 2), sa1);
  EXPECT_EQ(build_suffix_array(text, 4), sa1);

  const auto u32 = build_suffix_array_u32(text, 4);
  ASSERT_EQ(u32.size(), sa1.size());
  for (std::size_t i = 0; i < sa1.size(); ++i)
    ASSERT_EQ(static_cast<idx_t>(u32[i]), sa1[i]) << "row " << i;
}

TEST(Sais, U32EntryMatchesWideEntry) {
  util::Xoshiro256ss rng(977);
  for (int round = 0; round < 20; ++round) {
    const std::size_t n = 1 + rng.below(2000);
    std::vector<seq::Code> text(n);
    for (auto& c : text) c = static_cast<seq::Code>(rng.below(4));
    const auto wide = build_suffix_array(text);
    const auto u32 = build_suffix_array_u32(text);
    ASSERT_EQ(u32.size(), wide.size());
    for (std::size_t i = 0; i < wide.size(); ++i)
      ASSERT_EQ(static_cast<idx_t>(u32[i]), wide[i]);
  }
}

TEST(Sais, ForcedWidePathMatchesNaiveAcrossTheBoundary) {
  // Shrink the 32-bit eligibility limit so texts on either side of it take
  // different cores: sizes crossing the boundary exercise the 64-bit top
  // level AND its narrowing into the int32 recursion (the reduced string
  // always fits).  This is the >2^31-char code path at testable scale.
  NarrowLimitGuard guard(64);
  util::Xoshiro256ss rng(31337);
  for (std::size_t n = 56; n <= 72; ++n) {
    std::vector<seq::Code> text(n);
    for (auto& c : text) c = static_cast<seq::Code>(rng.below(4));
    const auto naive = build_suffix_array_naive(text);
    EXPECT_EQ(build_suffix_array(text), naive) << "n=" << n;
    EXPECT_EQ(build_suffix_array(text, 4), naive) << "n=" << n;
    const auto u32 = build_suffix_array_u32(text);
    ASSERT_EQ(u32.size(), naive.size());
    for (std::size_t i = 0; i < naive.size(); ++i)
      ASSERT_EQ(static_cast<idx_t>(u32[i]), naive[i]) << "n=" << n;
  }
}

TEST(Sais, ForcedWideParallelMatchesDefaultNarrow) {
  const auto ref = seq::random_genome(150000, 29);
  std::vector<seq::Code> text(static_cast<std::size_t>(ref.length()));
  ref.pac().extract(0, text.size(), text.data());
  const auto narrow = build_suffix_array(text, 1);  // default: int32 core
  NarrowLimitGuard guard(1000);                     // now: int64 top level
  EXPECT_EQ(build_suffix_array(text, 1), narrow);
  EXPECT_EQ(build_suffix_array(text, 4), narrow);
}

}  // namespace
}  // namespace mem2::index
