// Unified metrics layer (util/metrics.h): the log2-bucket Histogram must
// track the old sorted-sample percentile estimators within bucket
// resolution (it replaced both copies of that code), merging must equal
// recording the concatenated samples, the registry must aggregate
// per-thread shards correctly, and the Prometheus exposition must be
// well-formed text format.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <random>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "util/metrics.h"
#include "util/sw_counters.h"

namespace mem2::util {
namespace {

/// The estimator both StreamMetrics and ServiceMetrics used before the
/// shared histogram: sorted samples, rank = q*(n-1)+0.5.
double oracle_quantile(std::vector<double> v, double q) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(v.size() - 1) + 0.5);
  return v[std::min(idx, v.size() - 1)];
}

TEST(Histogram, EmptyIsAllZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0.0);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.max(), 0.0);
  EXPECT_EQ(h.p50(), 0.0);
  EXPECT_EQ(h.p99(), 0.0);
}

TEST(Histogram, ExactMoments) {
  Histogram h;
  for (double v : {0.004, 0.001, 0.032, 0.002}) h.record(v);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_NEAR(h.sum(), 0.039, 1e-12);
  EXPECT_NEAR(h.mean(), 0.039 / 4, 1e-12);
  EXPECT_EQ(h.min(), 0.001);
  EXPECT_EQ(h.max(), 0.032);
}

TEST(Histogram, BucketBoundsAreLog2AndEndInInf) {
  EXPECT_EQ(Histogram::bucket_upper(0), Histogram::kMinUpper);
  for (int i = 1; i < Histogram::kBuckets - 1; ++i)
    EXPECT_DOUBLE_EQ(Histogram::bucket_upper(i),
                     2.0 * Histogram::bucket_upper(i - 1));
  EXPECT_TRUE(std::isinf(Histogram::bucket_upper(Histogram::kBuckets - 1)));
}

TEST(Histogram, ExtremesLandInEdgeBuckets) {
  Histogram h;
  h.record(0.0);                       // below the first bound
  h.record(1e-9);                      // below the first bound
  h.record(1e30);                      // beyond the finite range
  EXPECT_EQ(h.buckets().front(), 2u);
  EXPECT_EQ(h.buckets().back(), 1u);
  EXPECT_EQ(h.count(), 3u);
  // Quantiles stay within the observed data range even in edge buckets.
  EXPECT_GE(h.p50(), h.min());
  EXPECT_LE(h.p99(), h.max());
}

TEST(Histogram, NegativeClampsAndNanIgnored) {
  Histogram h;
  h.record(-1.0);
  h.record(std::nan(""));
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 0.0);
}

TEST(Histogram, QuantilesTrackSortedSampleOracle) {
  // Log-uniform latencies over 10us..1s — the operational regime the
  // histogram replaced the sample vectors for.  A log2-bucket estimate is
  // within a factor of 2 of the true value by construction; clamping to
  // min/max tightens the tails.
  std::mt19937_64 rng(20260807);
  std::uniform_real_distribution<double> log_u(std::log(1e-5), std::log(1.0));
  std::vector<double> samples;
  Histogram h;
  for (int i = 0; i < 5000; ++i) {
    const double v = std::exp(log_u(rng));
    samples.push_back(v);
    h.record(v);
  }
  for (double q : {0.0, 0.25, 0.5, 0.9, 0.99, 1.0}) {
    const double truth = oracle_quantile(samples, q);
    const double est = h.quantile(q);
    EXPECT_LE(est, truth * 2.0) << "q=" << q;
    EXPECT_GE(est, truth * 0.5) << "q=" << q;
    EXPECT_GE(est, h.min());
    EXPECT_LE(est, h.max());
  }
  EXPECT_GE(h.p99(), h.p50());
}

TEST(Histogram, SingleValueQuantileIsThatValue) {
  Histogram h;
  h.record(0.125);
  EXPECT_DOUBLE_EQ(h.p50(), 0.125);  // clamped to min == max
  EXPECT_DOUBLE_EQ(h.p99(), 0.125);
}

TEST(Histogram, MergeEqualsConcatenatedRecording) {
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<double> u(1e-6, 2.0);
  Histogram a, b, both;
  for (int i = 0; i < 300; ++i) {
    const double v = u(rng);
    (i % 2 ? a : b).record(v);
    both.record(v);
  }
  a += b;
  EXPECT_EQ(a.count(), both.count());
  EXPECT_DOUBLE_EQ(a.sum(), both.sum());
  EXPECT_EQ(a.min(), both.min());
  EXPECT_EQ(a.max(), both.max());
  EXPECT_EQ(a.buckets(), both.buckets());
  // Merging an empty histogram is a no-op in both directions.
  Histogram empty;
  const auto before = a.buckets();
  a += empty;
  EXPECT_EQ(a.buckets(), before);
  empty += a;
  EXPECT_EQ(empty.count(), a.count());
  EXPECT_EQ(empty.min(), a.min());
}

// --------------------------------------------------------------- exposition

TEST(PromWriter, CounterAndGaugeFormat) {
  std::ostringstream os;
  PromWriter w(os);
  w.counter("mem2_things_total", "Things seen", 42);
  w.gauge("mem2_level", "Current level", 1.5);
  const std::string out = os.str();
  EXPECT_NE(out.find("# HELP mem2_things_total Things seen\n"),
            std::string::npos);
  EXPECT_NE(out.find("# TYPE mem2_things_total counter\n"), std::string::npos);
  EXPECT_NE(out.find("\nmem2_things_total 42\n"), std::string::npos);
  EXPECT_NE(out.find("# TYPE mem2_level gauge\n"), std::string::npos);
  EXPECT_NE(out.find("\nmem2_level 1.5\n"), std::string::npos);
}

TEST(PromWriter, LabeledFamilyEmitsHeaderOnce) {
  std::ostringstream os;
  PromWriter w(os);
  w.counter("mem2_stage_total", "", 1, "stage=\"smem\"");
  w.counter("mem2_stage_total", "", 2, "stage=\"sal\"");
  const std::string out = os.str();
  EXPECT_EQ(out.find("# TYPE mem2_stage_total counter"),
            out.rfind("# TYPE mem2_stage_total counter"));
  EXPECT_NE(out.find("mem2_stage_total{stage=\"smem\"} 1\n"),
            std::string::npos);
  EXPECT_NE(out.find("mem2_stage_total{stage=\"sal\"} 2\n"),
            std::string::npos);
}

TEST(PromWriter, HistogramIsCumulativeSparseAndCapped) {
  Histogram h;
  h.record(2e-6);  // bucket 1
  h.record(3e-6);  // bucket 2
  h.record(1e30);  // overflow
  std::ostringstream os;
  PromWriter w(os);
  w.histogram("mem2_lat_seconds", "Latency", h);
  const std::string out = os.str();
  EXPECT_NE(out.find("# TYPE mem2_lat_seconds histogram\n"),
            std::string::npos);
  EXPECT_NE(out.find("mem2_lat_seconds_bucket{le=\"2e-06\"} 1\n"),
            std::string::npos);
  EXPECT_NE(out.find("mem2_lat_seconds_bucket{le=\"4e-06\"} 2\n"),
            std::string::npos);
  EXPECT_NE(out.find("mem2_lat_seconds_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(out.find("mem2_lat_seconds_count 3\n"), std::string::npos);
  // Sparse: empty finite buckets must not be rendered.
  EXPECT_EQ(out.find("le=\"1e-06\""), std::string::npos);
}

TEST(SwCounterMapping, IsTotalAndDistinct) {
  const auto& fields = sw_counter_fields();
  // Every field of SwCounters is a uint64; the table must cover the whole
  // struct, each member exactly once.
  EXPECT_EQ(fields.size() * sizeof(std::uint64_t), sizeof(SwCounters));
  std::set<std::string> names;
  SwCounters probe{};
  std::uint64_t stamp = 1;
  for (const auto& f : fields) {
    EXPECT_TRUE(names.insert(f.name).second) << "duplicate name " << f.name;
    probe.*(f.member) = stamp++;  // distinct member check: no overwrite
  }
  std::set<std::uint64_t> values;
  for (const auto& f : fields) values.insert(probe.*(f.member));
  EXPECT_EQ(values.size(), fields.size());
}

TEST(SwCounterMapping, WritesEveryFieldAsPrometheusCounter) {
  SwCounters c{};
  c.smems_found = 7;
  c.pe_proper_pairs = 9;
  std::ostringstream os;
  PromWriter w(os);
  write_sw_counters(w, c);
  const std::string out = os.str();
  EXPECT_NE(out.find("mem2_sw_smems_found_total 7\n"), std::string::npos);
  EXPECT_NE(out.find("mem2_sw_pe_proper_pairs_total 9\n"), std::string::npos);
  for (const auto& f : sw_counter_fields())
    EXPECT_NE(out.find("mem2_sw_" + std::string(f.name) + "_total"),
              std::string::npos);
}

// ----------------------------------------------------------------- registry

TEST(MetricsRegistry, RegistrationIsIdempotentAndKindChecked) {
  MetricsRegistry reg;
  const int a = reg.counter("batches", "help");
  EXPECT_EQ(reg.counter("batches", "other help"), a);
  EXPECT_THROW(reg.gauge("batches", ""), std::logic_error);
}

TEST(MetricsRegistry, CountersMergeAcrossThreads) {
  MetricsRegistry reg;
  const int hits = reg.counter("hits", "");
  const int misses = reg.counter("misses", "");
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t)
    workers.emplace_back([&] {
      for (int i = 0; i < 1000; ++i) reg.add(hits);
      reg.add(misses, 5);
    });
  for (auto& w : workers) w.join();
  EXPECT_EQ(reg.counter_value(hits), 4000u);
  EXPECT_EQ(reg.counter_value(misses), 20u);
}

TEST(MetricsRegistry, GaugeAndHistogram) {
  MetricsRegistry reg;
  const int g = reg.gauge("depth", "");
  const int h = reg.histogram("wait", "");
  reg.set(g, 3.5);
  EXPECT_EQ(reg.gauge_value(g), 3.5);
  std::thread other([&] { reg.observe(h, 0.25); });
  other.join();
  reg.observe(h, 0.75);
  const Histogram snap = reg.histogram_snapshot(h);
  EXPECT_EQ(snap.count(), 2u);
  EXPECT_DOUBLE_EQ(snap.sum(), 1.0);
  EXPECT_EQ(snap.min(), 0.25);
  EXPECT_EQ(snap.max(), 0.75);
}

TEST(MetricsRegistry, WritePrometheusAndReset) {
  MetricsRegistry reg;
  const int c = reg.counter("ops_total", "Operations");
  const int g = reg.gauge("depth", "Queue depth");
  const int h = reg.histogram("wait_seconds", "Wait");
  reg.add(c, 3);
  reg.set(g, 2);
  reg.observe(h, 0.5);
  std::ostringstream os;
  reg.write_prometheus(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("# TYPE ops_total counter"), std::string::npos);
  EXPECT_NE(out.find("ops_total 3\n"), std::string::npos);
  EXPECT_NE(out.find("depth 2\n"), std::string::npos);
  EXPECT_NE(out.find("wait_seconds_count 1\n"), std::string::npos);

  reg.reset_values();
  EXPECT_EQ(reg.counter_value(c), 0u);
  EXPECT_EQ(reg.gauge_value(g), 0.0);
  EXPECT_EQ(reg.histogram_snapshot(h).count(), 0u);
}

}  // namespace
}  // namespace mem2::util
