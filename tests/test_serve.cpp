// Multi-stream alignment service (serve/align_service.h): N concurrent
// sessions over one shared index and worker pool must each produce output
// byte-identical to their solo run for any stream count, interleaving,
// worker count and queue depth; admission control must fail fast with
// kResourceExhausted instead of blocking; a mid-flight failure in one
// stream must leave every sibling complete and correct; and per-stream
// counters/metrics must not bleed across sessions sharing a worker thread.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include "align/aligner.h"
#include "io/fastq.h"
#include "seq/genome_sim.h"
#include "seq/read_sim.h"
#include "serve/align_service.h"
#include "util/fault_injector.h"

namespace mem2::serve {
namespace {

struct ServeFixture {
  index::Mem2Index index;
  // Four distinct SE read sets (stream s uses set s % 4) + one paired set.
  std::vector<std::vector<seq::Read>> sets;
  std::vector<seq::Read> pairs;

  ServeFixture() {
    seq::GenomeConfig g;
    g.seed = 20260807;
    g.contig_lengths = {60000, 30000};
    g.repeat_fraction = 0.2;
    index = index::Mem2Index::build(seq::simulate_genome(g));

    for (unsigned s = 0; s < 4; ++s) {
      seq::ReadSimConfig r;
      r.seed = 400 + s;
      r.num_reads = 120;
      r.read_length = 101;
      r.name_prefix = "set" + std::to_string(s) + "_";
      sets.push_back(seq::simulate_reads(index.ref(), r));
    }
    seq::PairSimConfig p;
    p.seed = 500;
    p.num_pairs = 80;
    p.read_length = 101;
    p.insert_mean = 350;
    p.insert_std = 40;
    pairs = seq::simulate_pairs(index.ref(), p);
  }
};

const ServeFixture& fx() {
  static ServeFixture f;
  return f;
}

align::DriverOptions stream_options(bool paired = false, int batch = 32,
                                    int queue_depth = 4) {
  align::DriverOptions opt;
  opt.mode = align::Mode::kBatch;
  opt.paired = paired;
  opt.batch_size = batch;
  opt.queue_depth = queue_depth;
  opt.threads = 1;
  return opt;
}

/// Reference output: the same session run solo through the Stream API.
std::string solo_sam(const std::vector<seq::Read>& reads,
                     const align::DriverOptions& opt) {
  std::ostringstream os;
  align::OstreamSamSink sink(os);
  const align::Aligner aligner(fx().index, opt);
  EXPECT_TRUE(aligner.ok()) << aligner.status().to_string();
  EXPECT_TRUE(aligner.align(reads, sink).ok());
  return os.str();
}

/// Submit `reads` to `stream` in `chunk`-sized pieces and finish.
align::Status drive(ServiceStream& stream, const std::vector<seq::Read>& reads,
                    std::size_t chunk) {
  for (std::size_t i = 0; i < reads.size(); i += chunk) {
    const std::size_t end = std::min(reads.size(), i + chunk);
    std::vector<seq::Read> piece(reads.begin() + static_cast<std::ptrdiff_t>(i),
                                 reads.begin() + static_cast<std::ptrdiff_t>(end));
    if (auto st = stream.submit(std::move(piece)); !st.ok()) return st;
  }
  return stream.finish();
}

TEST(Serve, ConcurrentStreamsByteIdenticalToSolo) {
  // Stream counts x worker counts x queue depths; stream s gets read set
  // s % 4 and its own ragged chunk size, all driven from concurrent client
  // threads.  Every stream's SAM must match its solo run byte for byte.
  for (int n_streams : {1, 4, 16}) {
    for (int workers : {1, 3}) {
      for (int queue_depth : {1, 3}) {
        const auto opt = stream_options(false, 32, queue_depth);
        std::string expected[4];
        for (std::size_t s = 0; s < 4; ++s)
          expected[s] = solo_sam(fx().sets[s], opt);
        ServeOptions sopt;
        sopt.workers = workers;
        sopt.max_streams = n_streams;
        sopt.max_inflight_batches = n_streams * queue_depth;
        AlignService service(fx().index, sopt);
        ASSERT_TRUE(service.ok());

        std::vector<std::ostringstream> outs(static_cast<std::size_t>(n_streams));
        std::vector<std::unique_ptr<align::OstreamSamSink>> sinks;
        std::vector<ServiceStream> streams;
        for (int s = 0; s < n_streams; ++s) {
          sinks.push_back(std::make_unique<align::OstreamSamSink>(
              outs[static_cast<std::size_t>(s)]));
          streams.push_back(service.open(opt, *sinks.back()));
          ASSERT_TRUE(streams.back().ok()) << streams.back().status().to_string();
        }
        {
          std::vector<std::thread> clients;
          for (int s = 0; s < n_streams; ++s)
            clients.emplace_back([&, s] {
              const auto& reads = fx().sets[static_cast<std::size_t>(s % 4)];
              const std::size_t chunk = 7 + 13 * static_cast<std::size_t>(s);
              EXPECT_TRUE(drive(streams[static_cast<std::size_t>(s)], reads,
                                chunk).ok());
            });
          for (auto& c : clients) c.join();
        }
        for (int s = 0; s < n_streams; ++s)
          EXPECT_EQ(outs[static_cast<std::size_t>(s)].str(),
                    expected[static_cast<std::size_t>(s % 4)])
              << "streams=" << n_streams << " workers=" << workers
              << " queue_depth=" << queue_depth << " stream=" << s;
      }
    }
  }
}

TEST(Serve, MixedPairedAndSingleEndStreams) {
  // A paired session (insert-size calibration, rescue, pair flags) next to
  // SE sessions on the same pool: both must match their solo runs.
  const auto se_opt = stream_options(false);
  const auto pe_opt = stream_options(true);
  ServeOptions sopt;
  sopt.workers = 3;
  AlignService service(fx().index, sopt);

  std::ostringstream se_out, pe_out;
  align::OstreamSamSink se_sink(se_out), pe_sink(pe_out);
  ServiceStream se = service.open(se_opt, se_sink);
  ServiceStream pe = service.open(pe_opt, pe_sink);
  ASSERT_TRUE(se.ok() && pe.ok());

  std::thread t1([&] { EXPECT_TRUE(drive(se, fx().sets[0], 11).ok()); });
  std::thread t2([&] { EXPECT_TRUE(drive(pe, fx().pairs, 20).ok()); });
  t1.join();
  t2.join();

  EXPECT_EQ(se_out.str(), solo_sam(fx().sets[0], se_opt));
  EXPECT_EQ(pe_out.str(), solo_sam(fx().pairs, pe_opt));
  EXPECT_GT(pe.stats().counters.pe_proper_pairs, 0u);
}

TEST(Serve, AdmissionRejectsOverMaxStreams) {
  ServeOptions sopt;
  sopt.workers = 2;
  sopt.max_streams = 2;
  AlignService service(fx().index, sopt);

  align::CollectSamSink s1, s2, s3, s4;
  const auto opt = stream_options();
  ServiceStream a = service.open(opt, s1);
  ServiceStream b = service.open(opt, s2);
  ASSERT_TRUE(a.ok() && b.ok());

  // Third open fails fast — kResourceExhausted, never blocks.
  ServiceStream c = service.open(opt, s3);
  EXPECT_FALSE(c.ok());
  EXPECT_EQ(c.status().code(), align::ErrorCode::kResourceExhausted);
  EXPECT_NE(c.status().to_string().find("resource-exhausted"),
            std::string::npos);
  // A rejected handle is inert but safe.
  EXPECT_FALSE(c.submit(fx().sets[0]).ok());
  EXPECT_EQ(c.finish().code(), align::ErrorCode::kResourceExhausted);

  // Capacity frees as soon as a stream finishes.
  EXPECT_TRUE(drive(a, fx().sets[0], 50).ok());
  ServiceStream d = service.open(opt, s4);
  EXPECT_TRUE(d.ok()) << d.status().to_string();
  EXPECT_TRUE(drive(d, fx().sets[1], 50).ok());
  EXPECT_TRUE(b.finish().ok());
  EXPECT_EQ(service.metrics().streams_rejected, 1u);
}

TEST(Serve, AdmissionRejectsOverBatchBudget) {
  ServeOptions sopt;
  sopt.workers = 1;
  sopt.max_streams = 8;
  sopt.max_inflight_batches = 8;
  AlignService service(fx().index, sopt);

  align::CollectSamSink s1, s2;
  ServiceStream a = service.open(stream_options(false, 32, 5), s1);
  ASSERT_TRUE(a.ok());
  ServiceStream b = service.open(stream_options(false, 32, 5), s2);  // 10 > 8
  EXPECT_FALSE(b.ok());
  EXPECT_EQ(b.status().code(), align::ErrorCode::kResourceExhausted);
  EXPECT_TRUE(drive(a, fx().sets[0], 40).ok());
}

TEST(Serve, WorkerFaultIsIsolatedToOneStream) {
  // MEM2_FAULT-style injected failure inside batch processing: the injector
  // fires exactly once, so exactly one session dies (sticky kInternal) and
  // every sibling must still complete byte-identical to solo.
  const auto opt = stream_options();
  const std::string expected[4] = {
      solo_sam(fx().sets[0], opt), solo_sam(fx().sets[1], opt),
      solo_sam(fx().sets[2], opt), solo_sam(fx().sets[3], opt)};

  ServeOptions sopt;
  sopt.workers = 2;
  AlignService service(fx().index, sopt);

  std::vector<std::ostringstream> outs(4);
  std::vector<std::unique_ptr<align::OstreamSamSink>> sinks;
  std::vector<ServiceStream> streams;
  for (int s = 0; s < 4; ++s) {
    sinks.push_back(std::make_unique<align::OstreamSamSink>(
        outs[static_cast<std::size_t>(s)]));
    streams.push_back(service.open(opt, *sinks.back()));
    ASSERT_TRUE(streams.back().ok());
  }

  ASSERT_TRUE(util::FaultInjector::instance().arm("align.worker"));
  std::vector<align::Status> results(4);
  {
    std::vector<std::thread> clients;
    for (int s = 0; s < 4; ++s)
      clients.emplace_back([&, s] {
        results[static_cast<std::size_t>(s)] = drive(
            streams[static_cast<std::size_t>(s)],
            fx().sets[static_cast<std::size_t>(s)], 9);
      });
    for (auto& c : clients) c.join();
  }
  util::FaultInjector::instance().disarm();

  int failed = 0;
  for (int s = 0; s < 4; ++s) {
    const auto& st = results[static_cast<std::size_t>(s)];
    if (!st.ok()) {
      ++failed;
      EXPECT_EQ(st.code(), align::ErrorCode::kInternal);
      EXPECT_NE(st.message().find("injected fault"), std::string::npos);
    } else {
      EXPECT_EQ(outs[static_cast<std::size_t>(s)].str(),
                expected[static_cast<std::size_t>(s)])
          << "sibling stream " << s << " corrupted by another stream's fault";
    }
  }
  EXPECT_EQ(failed, 1);
  const auto m = service.metrics();
  EXPECT_EQ(m.streams_failed, 1u);
  EXPECT_EQ(m.streams_completed, 3u);
}

TEST(Serve, PerStreamCountersAreUnpolluted) {
  // Two sessions with different workloads interleaved on ONE pooled worker
  // thread: each session's counters must equal its solo run's exactly.
  // (Process-global TLS counters would attribute one stream's work to the
  // other — the pollution util::CounterCapture exists to prevent.)
  const auto opt = stream_options();
  util::SwCounters solo[2];
  for (int s = 0; s < 2; ++s) {
    align::CollectSamSink sink;
    align::DriverStats stats;
    ASSERT_TRUE(align::Aligner(fx().index, opt)
                    .align(fx().sets[static_cast<std::size_t>(s)], sink, &stats)
                    .ok());
    solo[s] = stats.counters;
  }

  ServeOptions sopt;
  sopt.workers = 1;  // force both sessions through the same thread
  AlignService service(fx().index, sopt);
  align::CollectSamSink s1, s2;
  ServiceStream a = service.open(opt, s1);
  ServiceStream b = service.open(opt, s2);
  std::thread t1([&] { EXPECT_TRUE(drive(a, fx().sets[0], 13).ok()); });
  std::thread t2([&] { EXPECT_TRUE(drive(b, fx().sets[1], 5).ok()); });
  t1.join();
  t2.join();

  EXPECT_EQ(a.stats().counters.summary(), solo[0].summary());
  EXPECT_EQ(b.stats().counters.summary(), solo[1].summary());
}

TEST(Serve, StreamAndServiceMetrics) {
  ServeOptions sopt;
  sopt.workers = 2;
  AlignService service(fx().index, sopt);
  align::CollectSamSink sink;
  const auto opt = stream_options(false, 16, 2);
  ServiceStream stream = service.open(opt, sink);
  ASSERT_TRUE(drive(stream, fx().sets[0], 8).ok());

  const align::StreamMetrics m = stream.metrics();
  const auto n_batches = (fx().sets[0].size() + 15) / 16;
  EXPECT_EQ(m.batches, n_batches);
  EXPECT_EQ(m.records, sink.records().size());
  EXPECT_GE(m.queue_hwm, 1u);
  EXPECT_LE(m.queue_hwm, 2u);  // bounded by queue_depth
  EXPECT_EQ(m.batch_latency.count(), n_batches);
  EXPECT_GE(m.p99(), m.p50());
  EXPECT_GT(m.p50(), 0.0);

  const ServiceMetrics sm = service.metrics();
  EXPECT_EQ(sm.active_streams, 0);
  EXPECT_EQ(sm.peak_streams, 1);
  EXPECT_EQ(sm.streams_opened, 1u);
  EXPECT_EQ(sm.streams_completed, 1u);
  EXPECT_EQ(sm.reads, fx().sets[0].size());
  EXPECT_EQ(sm.records, sink.records().size());
  EXPECT_EQ(sm.batches, n_batches);
  EXPECT_NE(sm.summary().find("completed=1"), std::string::npos);
}

TEST(Serve, IngestSkipStreamBesideStrictSibling) {
  // One client feeds from a damaged FASTQ under the skip policy while a
  // strict sibling runs concurrently; both must match their solo outputs
  // and the skip must be invisible to the sibling.
  namespace fs = std::filesystem;
  const auto path = fs::temp_directory_path() / "mem2_serve_damaged.fq";
  {
    std::ofstream f(path);
    const auto& reads = fx().sets[3];
    for (std::size_t i = 0; i < reads.size(); ++i) {
      if (i == 5) f << "GARBAGE LINE NOT A RECORD\n+\nxx\n";  // mid-file damage
      f << '@' << reads[i].name << '\n' << reads[i].bases << '\n'
        << "+\n" << std::string(reads[i].bases.size(), 'I') << '\n';
    }
  }
  // Solo reference for the skip stream: whatever the skip reader yields.
  std::vector<seq::Read> skipped_reads;
  {
    io::FastqStream in(path.string(), io::FastqPolicy::kSkip);
    std::vector<seq::Read> chunk;
    while (in.next_chunk(chunk, 64) > 0)
      for (auto& r : chunk) skipped_reads.push_back(std::move(r));
  }
  ASSERT_FALSE(skipped_reads.empty());
  const auto opt = stream_options();
  const std::string expected_skip = solo_sam(skipped_reads, opt);
  const std::string expected_strict = solo_sam(fx().sets[0], opt);

  ServeOptions sopt;
  sopt.workers = 2;
  AlignService service(fx().index, sopt);
  std::ostringstream skip_out, strict_out;
  align::OstreamSamSink skip_sink(skip_out), strict_sink(strict_out);
  ServiceStream skip_stream = service.open(opt, skip_sink);
  ServiceStream strict_stream = service.open(opt, strict_sink);

  std::thread t1([&] {
    io::FastqStream in(path.string(), io::FastqPolicy::kSkip);
    std::vector<seq::Read> chunk;
    align::Status st;
    while (in.next_chunk(chunk, 17) > 0) {
      st = skip_stream.submit(std::move(chunk));
      ASSERT_TRUE(st.ok());
      chunk = {};
    }
    EXPECT_GT(in.records_skipped(), 0u);
    EXPECT_TRUE(skip_stream.finish().ok());
  });
  std::thread t2([&] { EXPECT_TRUE(drive(strict_stream, fx().sets[0], 10).ok()); });
  t1.join();
  t2.join();
  fs::remove(path);

  EXPECT_EQ(skip_out.str(), expected_skip);
  EXPECT_EQ(strict_out.str(), expected_strict);
}

TEST(Serve, InvalidOptionsSurfaceAsStatus) {
  ServeOptions bad;
  bad.max_streams = 0;
  EXPECT_FALSE(validate_serve_options(bad).ok());
  AlignService broken(fx().index, bad);
  EXPECT_FALSE(broken.ok());
  align::CollectSamSink sink;
  ServiceStream s = broken.open(stream_options(), sink);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.status().code(), align::ErrorCode::kInvalidArgument);

  // Per-session options are validated against the shared index at open().
  AlignService service(fx().index, ServeOptions{});
  align::DriverOptions opt = stream_options();
  opt.queue_depth = 0;
  ServiceStream t = service.open(opt, sink);
  EXPECT_FALSE(t.ok());
  EXPECT_EQ(t.status().code(), align::ErrorCode::kInvalidArgument);

  // Default-constructed handles are inert.
  ServiceStream empty;
  EXPECT_FALSE(empty.ok());
  EXPECT_FALSE(empty.submit(fx().sets[0]).ok());
}

TEST(Serve, ServiceDestroyedBeforeStreamFinish) {
  // Destroying the service with a stream still open must not hang; the
  // outstanding handle stays safe and reports the shutdown failure.
  align::CollectSamSink sink;
  ServiceStream stream;
  {
    ServeOptions sopt;
    sopt.workers = 2;
    AlignService service(fx().index, sopt);
    stream = service.open(stream_options(), sink);
    ASSERT_TRUE(stream.ok());
    ASSERT_TRUE(stream.submit(fx().sets[0]).ok());
  }  // service gone; queued batches drained, session failed
  const align::Status st = stream.finish();
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), align::ErrorCode::kInternal);
  EXPECT_NE(st.message().find("destroyed"), std::string::npos);

  // And opening on a moved-from/shut-down service refuses politely.
  ServeOptions sopt;
  AlignService service(fx().index, sopt);
  align::CollectSamSink sink2;
  ServiceStream ok_stream = service.open(stream_options(), sink2);
  EXPECT_TRUE(ok_stream.ok());
  EXPECT_TRUE(ok_stream.finish().ok());
}

TEST(Serve, ResourceExhaustedStatusRendering) {
  const auto st = align::Status::resource_exhausted("service at capacity");
  EXPECT_EQ(st.code(), align::ErrorCode::kResourceExhausted);
  EXPECT_EQ(st.to_string(), "[resource-exhausted]: service at capacity");
  EXPECT_STREQ(align::error_code_name(align::ErrorCode::kResourceExhausted),
               "resource-exhausted");
}

}  // namespace
}  // namespace mem2::serve
