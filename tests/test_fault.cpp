// Fault-injection harness (util/fault_injector.h): every named fault point
// must surface as the correct non-ok Status at the session boundary —
// never a terminate, a deadlock, or torn SAM output — and a failed session
// must leave the Aligner reusable.  Also proves the disarmed injector is
// output-invisible, the guarantee the golden-SAM tests rely on.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <sstream>

#include "align/aligner.h"
#include "index/mem2_index.h"
#include "io/fastq.h"
#include "seq/genome_sim.h"
#include "seq/read_sim.h"
#include "util/fault_injector.h"

namespace mem2 {
namespace {

struct FaultFixture {
  index::Mem2Index index;
  std::vector<seq::Read> reads;

  FaultFixture() {
    seq::GenomeConfig g;
    g.seed = 20260807;
    g.contig_lengths = {20000};
    index = index::Mem2Index::build(seq::simulate_genome(g));

    seq::ReadSimConfig r;
    r.seed = 7;
    r.num_reads = 96;
    r.read_length = 101;
    reads = seq::simulate_reads(index.ref(), r);
  }
};

const FaultFixture& fx() {
  static FaultFixture f;
  return f;
}

/// RAII arm/disarm so one test's fault can never leak into the next (the
/// injector is process-global and gtest runs tests in one process).
struct ArmedFault {
  explicit ArmedFault(const std::string& spec) {
    EXPECT_TRUE(util::FaultInjector::instance().arm(spec)) << spec;
  }
  ~ArmedFault() { util::FaultInjector::instance().disarm(); }
};

std::string one_shot_sam(const align::DriverOptions& opt) {
  std::ostringstream os;
  align::OstreamSamSink sink(os);
  const align::Aligner aligner(fx().index, opt);
  EXPECT_TRUE(aligner.ok());
  EXPECT_TRUE(aligner.align(fx().reads, sink).ok());
  return os.str();
}

TEST(FaultInjector, SpecParsing) {
  auto& fi = util::FaultInjector::instance();
  EXPECT_TRUE(fi.arm("site.a"));
  EXPECT_TRUE(fi.armed());
  EXPECT_EQ(fi.site(), "site.a");
  EXPECT_TRUE(fi.arm("site.b:3"));
  EXPECT_TRUE(fi.arm(""));  // empty spec disarms
  EXPECT_FALSE(fi.armed());
  EXPECT_FALSE(fi.arm(":2"));     // empty site
  EXPECT_FALSE(fi.arm("x:"));     // empty count
  EXPECT_FALSE(fi.arm("x:0"));    // fault points count from 1
  EXPECT_FALSE(fi.arm("x:abc"));  // non-numeric count
  EXPECT_FALSE(fi.armed());       // malformed specs leave it disarmed

  // Ranges and comma-separated multi-site specs (transient faults).
  EXPECT_TRUE(fi.arm("site.a:2-4"));
  EXPECT_EQ(fi.site(), "site.a");
  EXPECT_TRUE(fi.arm("site.a:2,site.b:3-5"));
  EXPECT_EQ(fi.site(), "site.a");  // first site, for backward compatibility
  EXPECT_FALSE(fi.arm("x:3-2"));   // inverted range
  EXPECT_FALSE(fi.arm("x:0-2"));   // range starts from 1
  EXPECT_FALSE(fi.arm("x:1-"));    // empty range end
  EXPECT_FALSE(fi.arm("a,"));      // trailing comma
  EXPECT_FALSE(fi.arm("a,,b"));    // empty element
  EXPECT_FALSE(fi.armed());
  fi.disarm();
}

TEST(FaultInjector, RangeFiresTransientlyAndMultiSiteIsIndependent) {
  ArmedFault fault("p:2-3,q");
  EXPECT_TRUE(util::fault_point("q"));   // q pass 1: fires
  EXPECT_FALSE(util::fault_point("q"));  // q recovered
  EXPECT_FALSE(util::fault_point("p"));  // p pass 1
  EXPECT_TRUE(util::fault_point("p"));   // p pass 2: in range
  EXPECT_TRUE(util::fault_point("p"));   // p pass 3: in range
  EXPECT_FALSE(util::fault_point("p"));  // p pass 4: healed
  EXPECT_EQ(util::FaultInjector::instance().hits("p"), 4u);
  EXPECT_EQ(util::FaultInjector::instance().hits("q"), 2u);
  EXPECT_EQ(util::FaultInjector::instance().hits("unarmed"), 0u);
}

TEST(FaultInjector, FiresExactlyOnceAtNthPass) {
  ArmedFault fault("p:2");
  EXPECT_FALSE(util::fault_point("q"));  // other sites never fire
  EXPECT_FALSE(util::fault_point("p"));  // pass 1
  EXPECT_TRUE(util::fault_point("p"));   // pass 2: the armed one
  EXPECT_FALSE(util::fault_point("p"));  // fires exactly once
}

TEST(FaultInjector, FastqReadSurfacesAsIoError) {
  std::istringstream in("@r1\nACGT\n+\nIIII\n@r2\nACGT\n+\nIIII\n");
  // Even the skip policy must not swallow an injected I/O failure — it
  // models a read() error, not a malformed record.
  io::FastqStream stream(in, io::FastqPolicy::kSkip);
  seq::Read r;
  ArmedFault fault("fastq.read:2");
  EXPECT_TRUE(stream.next_read(r));
  EXPECT_THROW(stream.next_read(r), io_error);
}

TEST(FaultInjector, IndexLoadSurfacesAsCorruption) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "mem2_fault.m2i").string();
  index::save_index(path, fx().index);
  {
    ArmedFault fault("index.load");
    EXPECT_THROW(index::load_index(path), corruption_error);
  }
  // Disarmed, the same file loads fine.
  EXPECT_EQ(index::load_index(path).seq_len(), fx().index.seq_len());
  std::remove(path.c_str());
}

TEST(FaultInjector, WorkerFaultUnblocksSubmitAndReportsContext) {
  align::DriverOptions opt;
  opt.mode = align::Mode::kBatch;
  opt.batch_size = 16;
  opt.threads = 2;
  opt.queue_depth = 1;  // tightest back-pressure: deadlock would show here

  std::ostringstream os;
  align::OstreamSamSink sink(os);
  const align::Aligner aligner(fx().index, opt);
  ASSERT_TRUE(aligner.ok());
  align::Stream stream = aligner.open(sink);

  ArmedFault fault("align.worker");
  // Keep pushing work at a failed pool: with workers draining the queue,
  // submit() must keep returning (with the sticky error) instead of
  // blocking forever on a full queue.
  align::Status st;
  for (int iter = 0; iter < 50 && st.ok(); ++iter)
    st = stream.submit(std::vector<seq::Read>(fx().reads));
  EXPECT_FALSE(st.ok());

  const align::Status fin = stream.finish();
  ASSERT_FALSE(fin.ok());
  EXPECT_EQ(fin.code(), align::ErrorCode::kInternal);
  EXPECT_NE(fin.stage().find("align-worker"), std::string::npos) << fin.stage();
  EXPECT_NE(fin.message().find("injected fault: align.worker"),
            std::string::npos)
      << fin.message();
  EXPECT_FALSE(fin.read().empty());  // first read of the failing batch

  // No torn records: the bulk writer is all-or-nothing per batch, so
  // whatever reached the sink before the failure is complete lines.
  const std::string out = os.str();
  EXPECT_TRUE(out.empty() || out.back() == '\n');

  // Failure is per-session: the same Aligner opens a clean stream.
  std::ostringstream os2;
  align::OstreamSamSink sink2(os2);
  align::Stream retry = aligner.open(sink2);
  ASSERT_TRUE(retry.submit(std::vector<seq::Read>(fx().reads)).ok());
  ASSERT_TRUE(retry.finish().ok());
  EXPECT_EQ(os2.str(), one_shot_sam(opt));
}

TEST(FaultInjector, BatchReplayFaultCrossesTheOmpRegion) {
  // The align.batch point sits inside an OpenMP worksharing loop; an
  // escaping exception there would terminate the process.  The guard must
  // carry it out to the worker's Status boundary instead.
  align::DriverOptions opt;
  opt.mode = align::Mode::kBatch;
  opt.batch_size = 32;
  opt.threads = 4;

  ArmedFault fault("align.batch");
  align::CollectSamSink sink;
  const align::Aligner aligner(fx().index, opt);
  ASSERT_TRUE(aligner.ok());
  const align::Status st = aligner.align(fx().reads, sink);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), align::ErrorCode::kInternal);
  EXPECT_NE(st.message().find("injected fault: align.batch"), std::string::npos)
      << st.message();
}

TEST(FaultInjector, SamWriteSurfacesAsIoErrorAtEmitStage) {
  align::DriverOptions opt;
  opt.mode = align::Mode::kBatch;
  opt.batch_size = 32;
  opt.threads = 2;

  ArmedFault fault("sam.write");
  std::ostringstream os;
  align::OstreamSamSink sink(os);
  const align::Aligner aligner(fx().index, opt);
  ASSERT_TRUE(aligner.ok());
  const align::Status st = aligner.align(fx().reads, sink);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), align::ErrorCode::kIoError);
  EXPECT_EQ(st.stage(), "sam-emit");
  EXPECT_NE(st.message().find("SAM output stream"), std::string::npos)
      << st.message();
}

TEST(FaultInjector, DisarmedInjectorIsOutputInvisible) {
  align::DriverOptions opt;
  opt.mode = align::Mode::kBatch;
  opt.batch_size = 32;
  opt.threads = 2;

  const std::string expected = one_shot_sam(opt);
  ASSERT_FALSE(expected.empty());
  // Armed at a site that never executes: the fast path must not perturb
  // anything (this is what keeps golden-SAM tests byte-identical with the
  // injector compiled in).
  ArmedFault fault("no.such.site");
  EXPECT_EQ(one_shot_sam(opt), expected);
}

}  // namespace
}  // namespace mem2
