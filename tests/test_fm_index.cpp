// FM-index invariants: occ backends vs naive counting, CP128 == CP32,
// backward/forward extension vs brute-force substring search over the
// doubled text, bucket layout static properties.
#include <gtest/gtest.h>

#include "index/bwt.h"
#include "index/fm_index.h"
#include "index/sais.h"
#include "seq/genome_sim.h"
#include "util/rng.h"

namespace mem2::index {
namespace {

struct Fixture {
  std::vector<seq::Code> ref;   // forward strand
  std::vector<seq::Code> text;  // ref + revcomp(ref)
  std::vector<idx_t> sa;
  BwtData bwt;
  FmIndexCp128 fm128;
  FmIndexCp32 fm32;

  explicit Fixture(std::int64_t len, std::uint64_t seed) {
    const auto genome = seq::random_genome(len, seed);
    ref.resize(static_cast<std::size_t>(genome.length()));
    genome.pac().extract(0, ref.size(), ref.data());
    text = with_reverse_complement(ref);
    sa = build_suffix_array(text);
    bwt = derive_bwt(text, sa);
    fm128.build(bwt);
    fm128.store_raw_bwt(bwt);
    fm32.build(bwt);
  }

  // Number of occurrences of pattern in text (exact, forward only).
  int count_occurrences(const std::vector<seq::Code>& pat) const {
    if (pat.empty()) return static_cast<int>(text.size()) + 1;
    int n = 0;
    for (std::size_t s = 0; s + pat.size() <= text.size(); ++s) {
      bool ok = true;
      for (std::size_t d = 0; d < pat.size() && ok; ++d)
        ok = text[s + d] == pat[d];
      n += ok;
    }
    return n;
  }
};

TEST(OccLayout, Cp32BucketIsOneCacheLine) {
  EXPECT_EQ(sizeof(OccCp32::Bucket), 64u);
  EXPECT_EQ(alignof(OccCp32::Bucket), 64u);
  EXPECT_EQ(OccCp32::kBucket, 32);
  EXPECT_EQ(sizeof(OccCp128::Bucket), 64u);
  EXPECT_EQ(OccCp128::kBucket, 128);
}

TEST(Occ, BackendsMatchNaiveCounting) {
  Fixture fx(2000, 3);
  const auto& bwtv = fx.bwt.bwt;
  // Naive prefix counts.
  std::vector<std::array<idx_t, 4>> prefix(bwtv.size() + 1, {0, 0, 0, 0});
  for (std::size_t j = 0; j < bwtv.size(); ++j) {
    prefix[j + 1] = prefix[j];
    ++prefix[j + 1][bwtv[j]];
  }
  OccCp128 occ128(bwtv);
  OccCp32 occ32(bwtv);
  util::Xoshiro256ss rng(5);
  for (int t = 0; t < 3000; ++t) {
    const idx_t j = static_cast<idx_t>(rng.below(bwtv.size() + 1));
    for (int c = 0; c < 4; ++c) {
      ASSERT_EQ(occ128.occ(c, j), prefix[static_cast<std::size_t>(j)][static_cast<std::size_t>(c)])
          << "cp128 j=" << j << " c=" << c;
      ASSERT_EQ(occ32.occ(c, j), prefix[static_cast<std::size_t>(j)][static_cast<std::size_t>(c)])
          << "cp32 j=" << j << " c=" << c;
    }
    idx_t o128[4], o32[4];
    occ128.occ4(j, o128);
    occ32.occ4(j, o32);
    for (int c = 0; c < 4; ++c) {
      ASSERT_EQ(o128[c], prefix[static_cast<std::size_t>(j)][static_cast<std::size_t>(c)]);
      ASSERT_EQ(o32[c], prefix[static_cast<std::size_t>(j)][static_cast<std::size_t>(c)]);
    }
  }
}

TEST(Occ, Cp32ScalarMatchesAvx2) {
  if (util::detect_isa() < util::Isa::kAvx2) GTEST_SKIP() << "no AVX2";
  Fixture fx(1000, 17);
  OccCp32 occ(fx.bwt.bwt);
  for (idx_t j = 0; j <= static_cast<idx_t>(fx.bwt.bwt.size()); ++j) {
    const auto* bkt = &occ.buckets()[static_cast<std::size_t>(j >> OccCp32::kBucketShift)];
    const int y = static_cast<int>(j & (OccCp32::kBucket - 1));
    for (int c = 0; c < 4; ++c)
      ASSERT_EQ(OccCp32::occ_in_bucket_scalar(bkt, c, y),
                OccCp32::occ_in_bucket_avx2(bkt, c, y))
          << "j=" << j << " c=" << c;
  }
}

TEST(FmIndex, SingleBaseIntervalsCoverAllRows) {
  Fixture fx(500, 23);
  idx_t covered = 1;  // the sentinel row
  for (int c = 0; c < 4; ++c) {
    const BiInterval bi = fx.fm128.set_intv(c);
    covered += bi.s;
    EXPECT_EQ(bi.k, fx.fm128.cum(c));
    // Palindromic text: count(c) == count(comp(c)), so the l-side interval
    // has the same size by construction.
    EXPECT_EQ(bi.l, fx.fm128.cum(3 - c));
  }
  EXPECT_EQ(covered, fx.fm128.seq_len() + 1);
}

// Walk a random query with backward extension; at every step the interval
// size must equal the brute-force occurrence count and the l-interval must
// be the interval of the reverse complement.
class FmExtensionTest : public ::testing::TestWithParam<int> {};

TEST_P(FmExtensionTest, BackwardExtensionMatchesBruteForce) {
  Fixture fx(800, 29u + static_cast<unsigned>(GetParam()));
  util::Xoshiro256ss rng(static_cast<std::uint64_t>(GetParam()));

  for (int trial = 0; trial < 20; ++trial) {
    // Random pattern, extended backward base by base.
    const int max_len = 12;
    std::vector<seq::Code> pat;
    int c0 = static_cast<int>(rng.below(4));
    BiInterval bi128 = fx.fm128.set_intv(c0);
    BiInterval bi32 = fx.fm32.set_intv(c0);
    pat.insert(pat.begin(), static_cast<seq::Code>(c0));

    for (int step = 0; step < max_len; ++step) {
      ASSERT_EQ(bi128, bi32);
      ASSERT_EQ(bi128.s, fx.count_occurrences(pat));
      // l side: interval of revcomp(pat).
      const auto rc = seq::reverse_complement(pat);
      ASSERT_EQ(bi128.s, fx.count_occurrences(rc));

      const int b = static_cast<int>(rng.below(4));
      BiInterval ok128[4], ok32[4];
      fx.fm128.backward_ext(bi128, ok128);
      fx.fm32.backward_ext(bi32, ok32);
      for (int c = 0; c < 4; ++c) ASSERT_EQ(ok128[c], ok32[c]);
      pat.insert(pat.begin(), static_cast<seq::Code>(b));
      bi128 = ok128[b];
      bi32 = ok32[b];
      if (bi128.s == 0) {
        ASSERT_EQ(fx.count_occurrences(pat), 0);
        break;
      }
    }
  }
}

TEST_P(FmExtensionTest, ForwardExtensionMatchesBruteForce) {
  Fixture fx(800, 31u + static_cast<unsigned>(GetParam()));
  util::Xoshiro256ss rng(97u + static_cast<std::uint64_t>(GetParam()));

  for (int trial = 0; trial < 20; ++trial) {
    std::vector<seq::Code> pat;
    const int c0 = static_cast<int>(rng.below(4));
    BiInterval bi = fx.fm32.set_intv(c0);
    pat.push_back(static_cast<seq::Code>(c0));

    for (int step = 0; step < 12; ++step) {
      ASSERT_EQ(bi.s, fx.count_occurrences(pat)) << "len=" << pat.size();
      const int b = static_cast<int>(rng.below(4));
      BiInterval ok[4];
      fx.fm32.forward_ext(bi, ok);
      pat.push_back(static_cast<seq::Code>(b));
      bi = ok[b];
      if (bi.s == 0) {
        ASSERT_EQ(fx.count_occurrences(pat), 0);
        break;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FmExtensionTest, ::testing::Range(0, 8));

TEST(FmIndex, LfStepWalksTextBackwards) {
  Fixture fx(300, 41);
  // Row r corresponds to suffix sa[r]; lf_step(r) must be the row of
  // suffix sa[r]-1 (wrapping the sentinel to row 0).
  std::vector<idx_t> row_of(fx.sa.size());
  for (std::size_t r = 0; r < fx.sa.size(); ++r)
    row_of[static_cast<std::size_t>(fx.sa[r])] = static_cast<idx_t>(r);

  for (std::size_t r = 0; r < fx.sa.size(); ++r) {
    const idx_t pos = fx.sa[r];
    const idx_t expect = pos == 0 ? 0 : row_of[static_cast<std::size_t>(pos - 1)];
    ASSERT_EQ(fx.fm128.lf_step(static_cast<idx_t>(r)), expect) << "row " << r;
  }
}

}  // namespace
}  // namespace mem2::index
