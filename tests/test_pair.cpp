// Paired-end subsystem: insert-size estimation on synthetic distributions,
// orientation inference, SAM flag invariants of aligned pairs, and the
// BSW-powered mate rescue path.
#include <gtest/gtest.h>

#include <map>

#include "align/aligner.h"
#include "pair/insert_stats.h"
#include "pair/mate_rescue.h"
#include "seq/genome_sim.h"
#include "seq/read_sim.h"

namespace mem2 {
namespace {

// ------------------------------------------------------------ estimation

TEST(InsertStats, EstimatesSyntheticDistribution) {
  // A deterministic saw-tooth around 400: uniform-ish in [350, 450].
  std::vector<pair::InsertSample> samples;
  for (int i = 0; i < 200; ++i)
    samples.push_back({1, 350 + (i * 37) % 101});
  const auto stats = pair::estimate_insert_stats(samples, {});
  EXPECT_EQ(stats.pairs_sampled, 200u);
  ASSERT_FALSE(stats.dir[1].failed);
  EXPECT_NEAR(stats.dir[1].mean, 400.0, 5.0);
  EXPECT_GT(stats.dir[1].std, 10.0);
  EXPECT_LT(stats.dir[1].low, 350);
  EXPECT_GT(stats.dir[1].high, 450);
  for (int d : {0, 2, 3}) EXPECT_TRUE(stats.dir[d].failed);
}

TEST(InsertStats, MinorityAndSparseClassesFail) {
  std::vector<pair::InsertSample> samples;
  for (int i = 0; i < 300; ++i) samples.push_back({1, 380 + i % 40});
  for (int i = 0; i < 12; ++i) samples.push_back({2, 200 + i});  // 12 < 5% of 300? no: ratio vs max
  const auto stats = pair::estimate_insert_stats(samples, {});
  ASSERT_FALSE(stats.dir[1].failed);
  // 12 samples pass min_dir_count but fail min_dir_ratio (12 < 0.05 * 300).
  EXPECT_TRUE(stats.dir[2].failed);
  // Fewer than min_dir_count outright.
  std::vector<pair::InsertSample> few(5, {0, 100});
  EXPECT_TRUE(pair::estimate_insert_stats(few, {}).dir[0].failed);
}

TEST(InsertStats, IgnoresOutOfRangeSamples) {
  pair::PairOptions popt;
  popt.max_ins = 1000;
  std::vector<pair::InsertSample> samples;
  for (int i = 0; i < 50; ++i) samples.push_back({1, 400 + i % 20});
  samples.push_back({1, 0});      // below 1
  samples.push_back({1, 50000});  // beyond max_ins
  const auto stats = pair::estimate_insert_stats(samples, popt);
  EXPECT_EQ(stats.dir[1].count, 50u);
}

TEST(InsertStats, TinyCalibrationSets) {
  // Estimation must behave when the stream holds far fewer pairs than
  // stat_pairs: exactly min_dir_count samples calibrate, one fewer fails.
  pair::PairOptions popt;
  std::vector<pair::InsertSample> ten;
  for (int i = 0; i < popt.min_dir_count; ++i)
    ten.push_back({1, 300 + 7 * i});  // 300, 307, ..., 363
  const auto ok = pair::estimate_insert_stats(ten, popt);
  ASSERT_FALSE(ok.dir[1].failed);
  EXPECT_EQ(ok.dir[1].count, static_cast<std::uint64_t>(popt.min_dir_count));
  // Percentile bounds at tiny N: the accepted range must bracket every
  // sample (nothing is an outlier in a 10-point saw-tooth) and stay >= 1.
  EXPECT_GE(ok.dir[1].low, 1);
  EXPECT_LE(ok.dir[1].low, 300);
  EXPECT_GE(ok.dir[1].high, 363);
  EXPECT_GT(ok.dir[1].mean, 300.0);
  EXPECT_LT(ok.dir[1].mean, 363.0);

  ten.pop_back();
  EXPECT_TRUE(pair::estimate_insert_stats(ten, popt).dir[1].failed);
  // And the empty set fails everywhere without dividing by zero.
  const auto none = pair::estimate_insert_stats({}, popt);
  EXPECT_EQ(none.pairs_sampled, 0u);
  for (const auto& d : none.dir) EXPECT_TRUE(d.failed);
}

TEST(InsertStats, AllOneOrientation) {
  // A library that is 100% RF: that class calibrates, every other fails,
  // and the ratio test cannot divide against a zero-count dominant class.
  std::vector<pair::InsertSample> samples;
  for (int i = 0; i < 100; ++i) samples.push_back({2, 500 + i % 50});
  const auto stats = pair::estimate_insert_stats(samples, {});
  ASSERT_FALSE(stats.dir[2].failed);
  EXPECT_EQ(stats.dir[2].count, 100u);
  for (int d : {0, 1, 3}) {
    EXPECT_TRUE(stats.dir[d].failed);
    EXPECT_EQ(stats.dir[d].count, 0u);
  }
  EXPECT_FALSE(stats.any() && stats.dir[2].failed);
  EXPECT_TRUE(stats.any());
}

TEST(InsertStats, ZeroVarianceInserts) {
  // An exact-insert library (every fragment 250 bp): mean lands on the
  // sample, std is floored to a positive epsilon instead of zero (pair
  // scoring divides by it), and the accepted range collapses to the point.
  std::vector<pair::InsertSample> samples(64, {1, 250});
  const auto stats = pair::estimate_insert_stats(samples, {});
  ASSERT_FALSE(stats.dir[1].failed);
  EXPECT_DOUBLE_EQ(stats.dir[1].mean, 250.0);
  EXPECT_GT(stats.dir[1].std, 0.0);
  EXPECT_LT(stats.dir[1].std, 1e-6);
  EXPECT_EQ(stats.dir[1].low, 250);
  EXPECT_EQ(stats.dir[1].high, 250);
}

TEST(InsertStats, PercentileRoundingNeverReadsPastTheEnd) {
  // bwa's percentile rounding (f * n + .499) can land one past the end for
  // small classes; the clamp must keep bounds finite and ordered for the
  // smallest N that can calibrate.
  pair::PairOptions popt;
  popt.min_dir_count = 1;
  for (int n : {1, 2, 3, 4}) {
    std::vector<pair::InsertSample> samples;
    for (int i = 0; i < n; ++i) samples.push_back({0, 100 * (i + 1)});
    const auto stats = pair::estimate_insert_stats(samples, popt);
    ASSERT_FALSE(stats.dir[0].failed) << "n=" << n;
    EXPECT_GE(stats.dir[0].low, 1) << "n=" << n;
    EXPECT_LE(stats.dir[0].low, stats.dir[0].high) << "n=" << n;
    EXPECT_GE(stats.dir[0].mean, 100.0) << "n=" << n;
    EXPECT_LE(stats.dir[0].mean, 100.0 * n) << "n=" << n;
  }
}

TEST(InsertStats, InferDirClassesAreConsistent) {
  const idx_t l_pac = 10000;
  idx_t dist = 0;
  // FR: mate 1 forward at 1000, mate 2 reverse with rb = 2*l_pac - 1400
  // (forward projection 1399): classic proper pair, insert ~400.
  EXPECT_EQ(pair::infer_dir(l_pac, 1000, 2 * l_pac - 1400, &dist), 1);
  EXPECT_NEAR(static_cast<double>(dist), 399.0, 1.0);
  // Same strand: FF.
  EXPECT_EQ(pair::infer_dir(l_pac, 1000, 1400, &dist), 0);
  EXPECT_EQ(dist, 400);
}

// ------------------------------------------------------------- alignment

struct PairedFixture {
  index::Mem2Index index;
  std::vector<seq::Read> reads;

  explicit PairedFixture(double damage_fraction = 0.0, std::int64_t pairs = 400) {
    seq::GenomeConfig g;
    g.seed = 20240401;
    g.contig_lengths = {120000, 60000};
    g.repeat_fraction = 0.2;
    index = index::Mem2Index::build(seq::simulate_genome(g));

    seq::PairSimConfig p;
    p.seed = 4242;
    p.num_pairs = pairs;
    p.read_length = 101;
    p.insert_mean = 350;
    p.insert_std = 30;
    p.damage_fraction = damage_fraction;
    reads = seq::simulate_pairs(index.ref(), p);
  }
};

struct PairedRun {
  std::vector<io::SamRecord> records;
  pair::InsertStats stats;
  align::DriverStats dstats;
};

PairedRun align_paired(const PairedFixture& fx, align::DriverOptions opt) {
  opt.mode = align::Mode::kBatch;
  opt.paired = true;
  if (opt.batch_size % 2) ++opt.batch_size;
  align::Aligner aligner(fx.index, opt);
  EXPECT_TRUE(aligner.ok()) << aligner.status().message();
  align::CollectSamSink sink;
  align::Stream stream = aligner.open(sink);
  EXPECT_TRUE(stream.submit(std::span<const seq::Read>(fx.reads)).ok());
  EXPECT_TRUE(stream.finish().ok());
  return {sink.take_records(), stream.pair_stats(), stream.stats()};
}

TEST(InsertStats, SessionWithFewerPairsThanStatPairs) {
  // A stream shorter than the calibration prefix must still calibrate (the
  // session estimates at finish() over whatever arrived).
  PairedFixture fx(0.0, 40);  // 40 pairs << default stat_pairs = 512
  const auto run = align_paired(fx, {});
  ASSERT_FALSE(run.stats.dir[1].failed) << run.stats.summary();
  EXPECT_GT(run.stats.pairs_sampled, 0u);
  EXPECT_LE(run.stats.pairs_sampled, 40u);
  EXPECT_GT(run.dstats.counters.pe_proper_pairs, 30u);
}

TEST(PairedSam, FlagInvariants) {
  PairedFixture fx;
  const auto run = align_paired(fx, {});
  ASSERT_FALSE(run.records.empty());
  ASSERT_FALSE(run.stats.dir[1].failed) << run.stats.summary();

  // Collect each pair's primary records.
  struct Primaries {
    const io::SamRecord* r[2] = {nullptr, nullptr};
  };
  std::map<std::string, Primaries> pairs;
  for (const auto& rec : run.records) {
    EXPECT_TRUE(rec.flag & io::kFlagPaired) << rec.to_line();
    const bool is1 = rec.flag & io::kFlagRead1;
    const bool is2 = rec.flag & io::kFlagRead2;
    EXPECT_NE(is1, is2) << rec.to_line();
    if (rec.flag & (io::kFlagSecondary | io::kFlagSupplementary)) continue;
    Primaries& p = pairs[rec.qname];
    const int which = is2 ? 1 : 0;
    EXPECT_EQ(p.r[which], nullptr) << "duplicate primary: " << rec.to_line();
    p.r[which] = &rec;
  }

  int proper = 0;
  for (const auto& [name, p] : pairs) {
    ASSERT_NE(p.r[0], nullptr) << name;
    ASSERT_NE(p.r[1], nullptr) << name;
    const io::SamRecord& a = *p.r[0];
    const io::SamRecord& b = *p.r[1];
    // Mate bits mirror the other record's own bits.
    EXPECT_EQ((a.flag & io::kFlagMateUnmapped) != 0,
              (b.flag & io::kFlagUnmapped) != 0);
    EXPECT_EQ((b.flag & io::kFlagMateUnmapped) != 0,
              (a.flag & io::kFlagUnmapped) != 0);
    if (!(b.flag & io::kFlagUnmapped)) {
      EXPECT_EQ((a.flag & io::kFlagMateReverse) != 0,
                (b.flag & io::kFlagReverse) != 0);
    }
    // Proper-pair bit is a property of the template.
    EXPECT_EQ((a.flag & io::kFlagProperPair) != 0,
              (b.flag & io::kFlagProperPair) != 0);
    const bool both_mapped =
        !(a.flag & io::kFlagUnmapped) && !(b.flag & io::kFlagUnmapped);
    if (both_mapped && a.rname == b.rname) {
      EXPECT_EQ(a.tlen, -b.tlen) << name;
      EXPECT_EQ(a.pnext, b.pos) << name;
      EXPECT_EQ(b.pnext, a.pos) << name;
    }
    if (a.flag & io::kFlagProperPair) {
      ++proper;
      ASSERT_TRUE(both_mapped);
      ASSERT_EQ(a.rname, b.rname);
      // Proper iff within the estimated bounds: |TLEN| - 1 is exactly the
      // mem_pair distance for FR pairs.
      const auto dist = std::abs(a.tlen) - 1;
      EXPECT_GE(dist, run.stats.dir[1].low) << name;
      EXPECT_LE(dist, run.stats.dir[1].high) << name;
    }
  }
  // The clean library pairs almost everything.
  EXPECT_GT(proper, static_cast<int>(pairs.size()) * 9 / 10);
  EXPECT_EQ(run.dstats.counters.pe_proper_pairs, static_cast<std::uint64_t>(proper));

  // Converse direction: a confidently mapped FR pair within bounds must
  // carry the proper-pair flag.
  for (const auto& [name, p] : pairs) {
    const io::SamRecord& a = *p.r[0];
    const io::SamRecord& b = *p.r[1];
    if (a.flag & io::kFlagProperPair) continue;
    if ((a.flag | b.flag) & io::kFlagUnmapped) continue;
    if (a.mapq < 30 || b.mapq < 30 || a.rname != b.rname) continue;
    if (((a.flag & io::kFlagReverse) != 0) == ((b.flag & io::kFlagReverse) != 0))
      continue;  // not FR
    const auto dist = std::abs(a.tlen) - 1;
    EXPECT_TRUE(dist < run.stats.dir[1].low || dist > run.stats.dir[1].high)
        << name << ": in-bounds unique FR pair not flagged proper";
  }
}

TEST(PairedSam, MateRescueRecoversDamagedMates) {
  // Half the R2 mates carry periodic substitutions (period 12 <
  // min_seed_len 19): SMEM seeding cannot seed them, banded-SW rescue can.
  PairedFixture fx(/*damage_fraction=*/0.5);
  const auto run = align_paired(fx, {});
  const auto& c = run.dstats.counters;
  EXPECT_GT(c.pe_rescue_windows, 0u);
  EXPECT_GT(c.pe_rescue_jobs, 0u);
  EXPECT_GT(c.pe_rescue_hits, 0u);
  EXPECT_GT(c.pe_rescued_pairs, 0u);

  // Rescued mates land on the simulated origin: check R2 primaries.
  int r2_mapped = 0, r2_correct = 0;
  for (const auto& rec : run.records) {
    if (!(rec.flag & io::kFlagRead2)) continue;
    if (rec.flag & (io::kFlagSecondary | io::kFlagSupplementary)) continue;
    if (rec.flag & io::kFlagUnmapped) continue;
    ++r2_mapped;
    const auto truth = seq::parse_pair_truth(rec.qname);
    ASSERT_TRUE(truth.valid) << rec.qname;
    if (rec.rname == truth.contig &&
        std::llabs((rec.pos - 1) - truth.pos2) <= 25 &&
        ((rec.flag & io::kFlagReverse) != 0) == truth.reverse2)
      ++r2_correct;
  }
  EXPECT_GT(r2_mapped, 0);
  // The overwhelming majority of mapped damaged mates are placed right.
  EXPECT_GT(r2_correct, r2_mapped * 8 / 10);

  // Against the single-end run of the same reads, pairing must map more
  // primaries — the rescued mates.
  align::DriverOptions se;
  se.mode = align::Mode::kBatch;
  align::CollectSamSink sink;
  ASSERT_TRUE(align::Aligner(fx.index, se).align(fx.reads, sink).ok());
  int se_mapped = 0, pe_mapped = 0;
  for (const auto& rec : sink.records())
    if (!(rec.flag & (io::kFlagSecondary | io::kFlagSupplementary)) &&
        !(rec.flag & io::kFlagUnmapped))
      ++se_mapped;
  for (const auto& rec : run.records)
    if (!(rec.flag & (io::kFlagSecondary | io::kFlagSupplementary)) &&
        !(rec.flag & io::kFlagUnmapped))
      ++pe_mapped;
  EXPECT_GT(pe_mapped, se_mapped) << "mate rescue should map more reads than SE";
}

TEST(PairedSam, OddReadCountFailsCleanly) {
  PairedFixture fx(0.0, 10);
  align::DriverOptions opt;
  opt.mode = align::Mode::kBatch;
  opt.paired = true;
  align::Aligner aligner(fx.index, opt);
  ASSERT_TRUE(aligner.ok());
  align::CollectSamSink sink;
  align::Stream stream = aligner.open(sink);
  std::vector<seq::Read> odd(fx.reads.begin(), fx.reads.end() - 1);
  ASSERT_TRUE(stream.submit(std::move(odd)).ok());
  const auto st = stream.finish();
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("even number of reads"), std::string::npos);
}

TEST(PairedSam, OptionValidation) {
  PairedFixture fx(0.0, 2);
  align::DriverOptions opt;
  opt.paired = true;
  opt.mode = align::Mode::kBaseline;
  EXPECT_FALSE(align::Aligner(fx.index, opt).ok());
  opt.mode = align::Mode::kBatch;
  opt.batch_size = 333;  // odd
  EXPECT_FALSE(align::Aligner(fx.index, opt).ok());
  opt.batch_size = 334;
  EXPECT_TRUE(align::Aligner(fx.index, opt).ok());
}

}  // namespace
}  // namespace mem2
