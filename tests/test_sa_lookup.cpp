// SAL kernel: sampled (baseline) and flat (optimized) lookups must agree
// with the raw suffix array for every row — the paper's identical-output
// requirement for the 183x-speedup kernel — across sampling intervals.
#include <gtest/gtest.h>

#include "index/bwt.h"
#include "index/flat_sa.h"
#include "index/sais.h"
#include "index/sampled_sa.h"
#include "seq/genome_sim.h"
#include "util/rng.h"

namespace mem2::index {
namespace {

struct SalFixture {
  std::vector<idx_t> sa;
  FmIndexCp128 fm;

  explicit SalFixture(std::int64_t len, std::uint64_t seed) {
    const auto genome = seq::random_genome(len, seed);
    std::vector<seq::Code> fwd(static_cast<std::size_t>(genome.length()));
    genome.pac().extract(0, fwd.size(), fwd.data());
    const auto text = with_reverse_complement(fwd);
    sa = build_suffix_array(text);
    const auto bwt = derive_bwt(text, sa);
    fm.build(bwt);
    fm.store_raw_bwt(bwt);
  }
};

class SampledSaTest : public ::testing::TestWithParam<int> {};

TEST_P(SampledSaTest, LookupMatchesRawSaEverywhere) {
  SalFixture fx(3000, 13);
  SampledSA128 sal;
  sal.build(fx.sa, GetParam());
  for (std::size_t r = 0; r < fx.sa.size(); ++r)
    ASSERT_EQ(sal.lookup(fx.fm, static_cast<idx_t>(r)), fx.sa[r]) << "row " << r;
}

// The paper's baseline uses compression factor up to 128; sweep the range.
INSTANTIATE_TEST_SUITE_P(Intervals, SampledSaTest,
                         ::testing::Values(2, 8, 32, 64, 128));

TEST(FlatSa, LookupIsIdentity) {
  SalFixture fx(2000, 19);
  FlatSA flat;
  flat.build(fx.sa);
  for (std::size_t r = 0; r < fx.sa.size(); ++r)
    ASSERT_EQ(flat.lookup(static_cast<idx_t>(r)), fx.sa[r]);
  // Flat-SA entries are stored narrowed to 32 bits (half the paper's
  // baseline footprint); lookups widen back to idx_t.
  EXPECT_EQ(flat.memory_bytes(), fx.sa.size() * sizeof(std::uint32_t));
}

TEST(SampledSa, RejectsNonPowerOfTwoInterval) {
  SampledSA128 sal;
  std::vector<idx_t> sa = {3, 2, 1, 0};
  EXPECT_THROW(sal.build(sa, 3), mem2::invariant_error);
}

TEST(SampledSa, LfWalkCostGrowsWithInterval) {
  // Structural property behind Table 5: average LF steps ~ (d-1)/2, so the
  // instruction-count proxy grows with the compression factor.
  SalFixture fx(4000, 23);
  util::Xoshiro256ss rng(1);
  std::vector<idx_t> rows(2000);
  for (auto& r : rows) r = static_cast<idx_t>(rng.below(fx.sa.size()));

  auto steps_for = [&](int interval) {
    SampledSA128 sal;
    sal.build(fx.sa, interval);
    auto& ctr = util::tls_counters();
    const auto before = ctr.sa_lf_steps;
    for (idx_t r : rows) sal.lookup(fx.fm, r);
    return ctr.sa_lf_steps - before;
  };

  const auto steps32 = steps_for(32);
  const auto steps128 = steps_for(128);
  EXPECT_GT(steps128, steps32 * 3);  // ~4x expected
  // Hitting a row divisible by d during the walk is ~geometric with mean d.
  const double avg128 = static_cast<double>(steps128) / static_cast<double>(rows.size());
  EXPECT_GT(avg128, 64.0);
  EXPECT_LT(avg128, 192.0);
}

}  // namespace
}  // namespace mem2::index
