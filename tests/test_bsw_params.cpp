// Scoring-parameter sweep: the SIMD engines' bias trick and saturating
// arithmetic must hold for any (match, mismatch, gap) configuration users
// might pass (bwa -A/-B/-O/-E), not just the defaults.  Each parameterized
// case checks bit-identity against the scalar kernel on a mixed job pool.
#include <gtest/gtest.h>

#include "bsw/bsw_batch.h"
#include "seq/dna.h"
#include "util/rng.h"

namespace mem2::bsw {
namespace {

struct ParamCase {
  int a, b, o_del, e_del, o_ins, e_ins, zdrop;
  const char* label;
};

class BswParamSweep : public ::testing::TestWithParam<ParamCase> {};

TEST_P(BswParamSweep, AllEnginesMatchScalar) {
  const ParamCase pc = GetParam();
  KswParams p;
  p.a = pc.a;
  p.b = pc.b;
  p.o_del = pc.o_del;
  p.e_del = pc.e_del;
  p.o_ins = pc.o_ins;
  p.e_ins = pc.e_ins;
  p.zdrop = pc.zdrop;

  // Job pool with indel-heavy divergence to exercise both gap chains.
  util::Xoshiro256ss rng(0xb5f);
  std::vector<std::vector<seq::Code>> qs, ts;
  std::vector<ExtendJob> jobs;
  for (int i = 0; i < 200; ++i) {
    const int qlen = 8 + static_cast<int>(rng.below(90));
    std::vector<seq::Code> q(static_cast<std::size_t>(qlen));
    for (auto& c : q) c = static_cast<seq::Code>(rng.below(4));
    std::vector<seq::Code> t;
    for (const auto c : q) {
      if (rng.chance(0.05)) continue;
      if (rng.chance(0.05)) t.push_back(static_cast<seq::Code>(rng.below(4)));
      t.push_back(rng.chance(0.1) ? static_cast<seq::Code>(rng.below(4)) : c);
    }
    if (t.empty()) t.push_back(0);
    qs.push_back(std::move(q));
    ts.push_back(std::move(t));
  }
  for (std::size_t i = 0; i < qs.size(); ++i) {
    ExtendJob j;
    j.query = qs[i].data();
    j.qlen = static_cast<int>(qs[i].size());
    j.target = ts[i].data();
    j.tlen = static_cast<int>(ts[i].size());
    j.h0 = 1 + static_cast<int>(rng.below(40));
    j.w = 10 + static_cast<int>(rng.below(80));
    jobs.push_back(j);
  }

  std::vector<KswResult> expect;
  expect.reserve(jobs.size());
  for (const auto& j : jobs) expect.push_back(ksw_extend_scalar(j, p));

  for (util::Isa isa : {util::Isa::kScalar, util::Isa::kAvx2, util::Isa::kAvx512}) {
    if (util::detect_isa() < isa) continue;
    // 16-bit path: all jobs.
    {
      const BswEngine e = get_engine(isa, Precision::k16bit);
      std::vector<KswResult> got(jobs.size());
      for (std::size_t pos = 0; pos < jobs.size(); pos += static_cast<std::size_t>(e.width)) {
        const int n = static_cast<int>(
            std::min<std::size_t>(static_cast<std::size_t>(e.width), jobs.size() - pos));
        e.run(&jobs[pos], &got[pos], n, p, nullptr);
      }
      for (std::size_t i = 0; i < jobs.size(); ++i)
        ASSERT_EQ(got[i], expect[i]) << pc.label << " " << e.name << " job " << i;
    }
    // 8-bit path: eligible jobs only.
    {
      const BswEngine e = get_engine(isa, Precision::k8bit);
      std::vector<ExtendJob> j8;
      std::vector<KswResult> e8;
      for (std::size_t i = 0; i < jobs.size(); ++i)
        if (fits_8bit(jobs[i], p)) {
          j8.push_back(jobs[i]);
          e8.push_back(expect[i]);
        }
      std::vector<KswResult> got(j8.size());
      for (std::size_t pos = 0; pos < j8.size(); pos += static_cast<std::size_t>(e.width)) {
        const int n = static_cast<int>(
            std::min<std::size_t>(static_cast<std::size_t>(e.width), j8.size() - pos));
        e.run(&j8[pos], &got[pos], n, p, nullptr);
      }
      for (std::size_t i = 0; i < j8.size(); ++i)
        ASSERT_EQ(got[i], e8[i]) << pc.label << " " << e.name << " job " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Scoring, BswParamSweep,
    ::testing::Values(ParamCase{1, 4, 6, 1, 6, 1, 100, "bwa_default"},
                      ParamCase{1, 1, 1, 1, 1, 1, 100, "flat_unit"},
                      ParamCase{2, 8, 12, 2, 12, 2, 200, "doubled"},
                      ParamCase{1, 4, 6, 1, 6, 1, 0, "no_zdrop"},
                      ParamCase{1, 4, 6, 1, 6, 1, 1, "tiny_zdrop"},
                      ParamCase{5, 2, 3, 1, 3, 1, 50, "match_heavy"},
                      ParamCase{1, 9, 16, 1, 16, 1, 100, "mismatch_heavy"},
                      ParamCase{1, 4, 6, 2, 10, 1, 100, "asymmetric_gaps"}),
    [](const ::testing::TestParamInfo<ParamCase>& info) {
      return info.param.label;
    });

}  // namespace
}  // namespace mem2::bsw
