// Golden-SAM regression corpus: small checked-in FASTA/FASTQ fixtures with
// expected single-end and paired-end SAM under tests/golden/, diffed line
// by line.  Perf-oriented PRs keep touching the hottest stages (BSW pooling,
// rescue scanning); this corpus catches any silent output change the
// invariance tests can't see (they compare a run against itself under
// different threadings — a wrong-everywhere change passes them).
//
// Regenerate after an INTENDED output change with:
//   ./build/test_golden_sam --bless
// which rewrites the fixtures in the source tree (MEM2_GOLDEN_DIR) and then
// verifies against the fresh files.  Review the diff of tests/golden/ like
// any other code change.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "align/aligner.h"
#include "io/fasta.h"
#include "io/fastq.h"
#include "seq/genome_sim.h"
#include "seq/read_sim.h"

namespace mem2 {
namespace golden {
bool g_bless = false;
}  // namespace golden

namespace {

std::string dir() { return MEM2_GOLDEN_DIR; }
std::string path(const char* name) { return dir() + "/" + name; }

/// Deterministic fixture corpus: a repeat-bearing two-contig genome, one
/// single-end library, one paired library with enough damaged mates to
/// exercise rescue.  Small enough to version (tens of kilobases).
seq::GenomeConfig genome_config() {
  seq::GenomeConfig g;
  g.seed = 20260601;
  g.contig_lengths = {30000, 15000};
  g.repeat_fraction = 0.35;
  return g;
}

seq::ReadSimConfig se_config() {
  seq::ReadSimConfig c;
  c.seed = 31337;
  c.num_reads = 150;
  c.read_length = 101;
  c.name_prefix = "gse";
  return c;
}

seq::PairSimConfig pe_config() {
  seq::PairSimConfig c;
  c.seed = 424242;
  c.num_pairs = 100;
  c.read_length = 101;
  c.insert_mean = 330;
  c.insert_std = 35;
  c.damage_fraction = 0.3;  // keep the rescue path inside the corpus
  c.name_prefix = "gpe";
  return c;
}

align::DriverOptions se_options() {
  align::DriverOptions opt;
  opt.mode = align::Mode::kBatch;
  return opt;
}

align::DriverOptions pe_options() {
  align::DriverOptions opt = se_options();
  opt.paired = true;  // stat_pairs (512) > 100 pairs: calibrates at finish()
  return opt;
}

struct AlignOut {
  std::vector<std::string> sam;
  util::SwCounters counters;
};

AlignOut run(const index::Mem2Index& index, const std::vector<seq::Read>& reads,
             const align::DriverOptions& opt) {
  align::Aligner aligner(index, opt);
  EXPECT_TRUE(aligner.ok()) << aligner.status().message();
  align::CollectSamSink sink;
  align::DriverStats stats;
  EXPECT_TRUE(aligner.align(reads, sink, &stats).ok());
  AlignOut out;
  out.counters = stats.counters;
  out.sam.reserve(sink.records().size());
  for (const auto& rec : sink.records()) out.sam.push_back(rec.to_line());
  return out;
}

void write_lines(const std::string& p, const std::vector<std::string>& lines) {
  std::ofstream f(p);
  ASSERT_TRUE(f.is_open()) << p;
  for (const auto& l : lines) f << l << '\n';
}

std::vector<std::string> read_lines(const std::string& p) {
  std::ifstream f(p);
  EXPECT_TRUE(f.is_open()) << "missing golden fixture " << p
                           << " — regenerate with: test_golden_sam --bless";
  std::vector<std::string> lines;
  for (std::string l; std::getline(f, l);) lines.push_back(l);
  return lines;
}

/// Regenerate every fixture, once per --bless process.  Reads are written
/// to FASTQ and read back before aligning, so round-trip fidelity of the
/// I/O layer is part of what the corpus pins down.
void bless_fixtures() {
  static std::once_flag once;
  std::call_once(once, [] {
    std::filesystem::create_directories(dir());
    const auto ref = seq::simulate_genome(genome_config());
    io::save_reference(path("genome.fa"), ref);
    const auto ref_disk = io::load_reference(path("genome.fa"));
    io::write_fastq_file(path("se_reads.fq"),
                         seq::simulate_reads(ref_disk, se_config()));
    io::write_fastq_file(path("pe_reads.fq"),
                         seq::simulate_pairs(ref_disk, pe_config()));
    const auto index = index::Mem2Index::build(ref_disk);
    write_lines(path("expected_se.sam"),
                run(index, io::read_fastq_file(path("se_reads.fq")),
                    se_options())
                    .sam);
    write_lines(path("expected_pe.sam"),
                run(index, io::read_fastq_file(path("pe_reads.fq")),
                    pe_options())
                    .sam);
    std::fprintf(stderr, "[bless] regenerated golden corpus in %s\n",
                 dir().c_str());
  });
}

void expect_lines_equal(const std::vector<std::string>& got,
                        const std::vector<std::string>& want,
                        const char* what) {
  EXPECT_EQ(got.size(), want.size()) << what << ": record count changed";
  int shown = 0;
  for (std::size_t i = 0; i < std::min(got.size(), want.size()); ++i) {
    if (got[i] == want[i]) continue;
    ADD_FAILURE() << what << ": first difference at record " << i
                  << "\n  expected: " << want[i] << "\n  got:      " << got[i];
    if (++shown >= 3) break;
  }
  if (shown > 0)
    ADD_FAILURE() << what
                  << " diverged from tests/golden/ — if the change is "
                     "intended, regenerate with: test_golden_sam --bless";
}

index::Mem2Index golden_index() {
  return index::Mem2Index::build(io::load_reference(path("genome.fa")));
}

TEST(GoldenSam, SingleEndMatchesCorpus) {
  if (golden::g_bless) bless_fixtures();
  const auto index = golden_index();
  const auto out = run(index, io::read_fastq_file(path("se_reads.fq")),
                       se_options());
  ASSERT_FALSE(out.sam.empty());
  expect_lines_equal(out.sam, read_lines(path("expected_se.sam")),
                     "single-end SAM");
}

TEST(GoldenSam, PairedEndMatchesCorpus) {
  if (golden::g_bless) bless_fixtures();
  const auto index = golden_index();
  const auto out = run(index, io::read_fastq_file(path("pe_reads.fq")),
                       pe_options());
  ASSERT_FALSE(out.sam.empty());
  // The corpus must keep every paired stage busy, or a rescue regression
  // could hide behind a workload that never rescues.
  EXPECT_GT(out.counters.pe_proper_pairs, 0u);
  EXPECT_GT(out.counters.pe_rescue_windows, 0u);
  EXPECT_GT(out.counters.pe_rescue_hits, 0u);
  expect_lines_equal(out.sam, read_lines(path("expected_pe.sam")),
                     "paired-end SAM");
}

TEST(GoldenSam, BaselineDriverMatchesCorpusToo) {
  // The baseline driver shares the golden contract for single-end output
  // (the paper's like-for-like replacement property, pinned to bytes).
  if (golden::g_bless) bless_fixtures();
  const auto index = golden_index();
  align::DriverOptions opt = se_options();
  opt.mode = align::Mode::kBaseline;
  const auto out = run(index, io::read_fastq_file(path("se_reads.fq")), opt);
  expect_lines_equal(out.sam, read_lines(path("expected_se.sam")),
                     "baseline single-end SAM");
}

}  // namespace
}  // namespace mem2

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--bless") {
      mem2::golden::g_bless = true;
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      --argc;
      break;
    }
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
