// SMEM kernel: smem1 vs brute force, backend equality (CP128 == CP32),
// prefetch-on/off output invariance, three-round seeding behaviour.
#include <gtest/gtest.h>

#include "index/bwt.h"
#include "index/sais.h"
#include "seq/genome_sim.h"
#include "smem/seeding.h"
#include "util/rng.h"

namespace mem2::smem {
namespace {

using index::BiInterval;

struct SmemFixture {
  std::vector<seq::Code> fwd;
  std::vector<seq::Code> text;
  index::FmIndexCp128 fm128;
  index::FmIndexCp32 fm32;
  std::vector<idx_t> sa;

  explicit SmemFixture(std::int64_t len, std::uint64_t seed, bool repeats = false) {
    seq::GenomeConfig cfg;
    cfg.seed = seed;
    cfg.contig_lengths = {len};
    if (!repeats) {
      cfg.repeat_fraction = 0;
      cfg.tandem_fraction = 0;
    }
    const auto genome = seq::simulate_genome(cfg);
    fwd.resize(static_cast<std::size_t>(genome.length()));
    genome.pac().extract(0, fwd.size(), fwd.data());
    text = index::with_reverse_complement(fwd);
    sa = index::build_suffix_array(text);
    const auto bwt = index::derive_bwt(text, sa);
    fm128.build(bwt);
    fm32.build(bwt);
  }

  // Sample an error-free query from the forward strand.
  std::vector<seq::Code> sample_query(util::Xoshiro256ss& rng, int qlen) const {
    const std::size_t pos = rng.below(fwd.size() - static_cast<std::size_t>(qlen));
    return {fwd.begin() + static_cast<std::ptrdiff_t>(pos),
            fwd.begin() + static_cast<std::ptrdiff_t>(pos) + qlen};
  }
};

// Check that (qb,qe) sets agree with brute force, and interval sizes match
// occurrence counts (both strands).
class SmemPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(SmemPropertyTest, Smem1MatchesBruteForce) {
  SmemFixture fx(600, 100u + static_cast<unsigned>(GetParam()), GetParam() % 2 == 1);
  util::Xoshiro256ss rng(static_cast<std::uint64_t>(GetParam()));
  SmemWorkspace ws;
  util::PrefetchPolicy pf;
  std::vector<Smem> found;

  for (int trial = 0; trial < 10; ++trial) {
    const int qlen = 30 + static_cast<int>(rng.below(40));
    auto q = fx.sample_query(rng, qlen);
    // Inject a mutation so SMEMs split.
    const std::size_t mut = rng.below(q.size());
    q[mut] = static_cast<seq::Code>((q[mut] + 1 + rng.below(3)) & 3);

    // Collect all SMEMs by scanning start positions like round 1 does.
    std::vector<std::pair<int, int>> got;
    int x = 0;
    while (x < static_cast<int>(q.size())) {
      x = smem1(fx.fm128, q, x, 1, found, ws, pf);
      for (const auto& m : found) got.emplace_back(m.qb, m.qe);
    }
    std::sort(got.begin(), got.end());
    got.erase(std::unique(got.begin(), got.end()), got.end());

    const auto expect = brute_force_smems(fx.text, q, 1);
    ASSERT_EQ(got, expect) << "trial " << trial;
  }
}

TEST_P(SmemPropertyTest, IntervalSizesEqualOccurrenceCounts) {
  SmemFixture fx(500, 200u + static_cast<unsigned>(GetParam()));
  util::Xoshiro256ss rng(77u + static_cast<std::uint64_t>(GetParam()));
  SmemWorkspace ws;
  util::PrefetchPolicy pf;
  std::vector<Smem> found;

  const auto q = fx.sample_query(rng, 50);
  int x = 0;
  while (x < static_cast<int>(q.size())) {
    x = smem1(fx.fm128, q, x, 1, found, ws, pf);
    for (const auto& m : found) {
      // Count occurrences of q[qb,qe) in the doubled text.
      int n = 0;
      const int len = m.qe - m.qb;
      for (std::size_t s = 0; s + static_cast<std::size_t>(len) <= fx.text.size(); ++s) {
        bool ok = true;
        for (int d = 0; d < len && ok; ++d)
          ok = fx.text[s + static_cast<std::size_t>(d)] == q[static_cast<std::size_t>(m.qb + d)];
        n += ok;
      }
      ASSERT_EQ(m.bi.s, n) << "smem [" << m.qb << "," << m.qe << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SmemPropertyTest, ::testing::Range(0, 8));

TEST(Smem, BackendsProduceIdenticalSmems) {
  SmemFixture fx(3000, 300, /*repeats=*/true);
  util::Xoshiro256ss rng(8);
  SmemWorkspace ws128, ws32;
  util::PrefetchPolicy pf;
  SeedingOptions opt;
  std::vector<Smem> out128, out32;

  for (int trial = 0; trial < 25; ++trial) {
    auto q = fx.sample_query(rng, 101);
    for (int e = 0; e < 3; ++e) {  // a few errors
      const std::size_t mut = rng.below(q.size());
      q[mut] = static_cast<seq::Code>((q[mut] + 1 + rng.below(3)) & 3);
    }
    collect_smems(fx.fm128, q, opt, out128, ws128, pf);
    collect_smems(fx.fm32, q, opt, out32, ws32, pf);
    ASSERT_EQ(out128, out32) << "trial " << trial;
  }
}

TEST(Smem, PrefetchDoesNotChangeOutput) {
  SmemFixture fx(2000, 301, /*repeats=*/true);
  util::Xoshiro256ss rng(9);
  SmemWorkspace ws;
  SeedingOptions opt;
  std::vector<Smem> with, without;

  for (int trial = 0; trial < 15; ++trial) {
    const auto q = fx.sample_query(rng, 76);
    collect_smems(fx.fm32, q, opt, with, ws, util::PrefetchPolicy{true});
    collect_smems(fx.fm32, q, opt, without, ws, util::PrefetchPolicy{false});
    ASSERT_EQ(with, without);
  }
}

TEST(Smem, AmbiguousBasesTerminateExtension) {
  SmemFixture fx(800, 302);
  SmemWorkspace ws;
  util::PrefetchPolicy pf;
  std::vector<Smem> out;

  util::Xoshiro256ss rng(1);
  auto q = fx.sample_query(rng, 60);
  q[30] = seq::kAmbig;
  int x = 0;
  std::vector<std::pair<int, int>> ranges;
  while (x < static_cast<int>(q.size())) {
    if (q[static_cast<std::size_t>(x)] > 3) {
      ++x;
      continue;
    }
    x = smem1(fx.fm128, q, x, 1, out, ws, pf);
    for (const auto& m : out) ranges.emplace_back(m.qb, m.qe);
  }
  for (const auto& [qb, qe] : ranges) {
    // No SMEM may span the ambiguous position.
    EXPECT_FALSE(qb <= 30 && 30 < qe) << qb << "," << qe;
  }
}

TEST(Smem, ReseedingSplitsLongUniqueSmem) {
  // A read fully matching a unique region yields one read-length SMEM in
  // round 1; round 2 must re-seed from its middle with min_intv = s+1 = 2,
  // producing additional (shorter, more frequent) intervals when repeats
  // exist.
  SmemFixture fx(20000, 303, /*repeats=*/true);
  util::Xoshiro256ss rng(10);
  SmemWorkspace ws;
  util::PrefetchPolicy pf;
  SeedingOptions opt;

  int trials_with_extra = 0;
  std::vector<Smem> out;
  for (int trial = 0; trial < 40; ++trial) {
    const auto q = fx.sample_query(rng, 120);
    collect_smems(fx.fm32, q, opt, out, ws, pf);
    std::size_t full_count = 0;
    for (const auto& m : out)
      if (m.len() == 120) ++full_count;
    if (full_count > 0 && out.size() > full_count) ++trials_with_extra;
  }
  EXPECT_GT(trials_with_extra, 0);
}

TEST(Smem, SeedStrategyRespectsMaxIntv) {
  SmemFixture fx(5000, 304, /*repeats=*/true);
  util::Xoshiro256ss rng(11);
  for (int trial = 0; trial < 20; ++trial) {
    const auto q = fx.sample_query(rng, 101);
    int x = 0;
    while (x < static_cast<int>(q.size())) {
      Smem m;
      x = seed_strategy1(fx.fm32, q, x, 19, 20, m);
      if (m.bi.s > 0) {
        EXPECT_LT(m.bi.s, 20);
        EXPECT_GT(m.len(), 19);  // i - x >= min_len means length >= min_len+1
      }
    }
  }
}

TEST(Smem, OutputSortedByQueryStart) {
  SmemFixture fx(4000, 305, /*repeats=*/true);
  util::Xoshiro256ss rng(12);
  SmemWorkspace ws;
  util::PrefetchPolicy pf;
  SeedingOptions opt;
  std::vector<Smem> out;
  for (int trial = 0; trial < 10; ++trial) {
    const auto q = fx.sample_query(rng, 151);
    collect_smems(fx.fm32, q, opt, out, ws, pf);
    for (std::size_t i = 1; i < out.size(); ++i) {
      ASSERT_LE(out[i - 1].qb, out[i].qb);
      if (out[i - 1].qb == out[i].qb) ASSERT_LE(out[i - 1].qe, out[i].qe);
    }
  }
}

}  // namespace
}  // namespace mem2::smem
